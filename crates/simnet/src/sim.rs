//! The discrete-event simulation engine.

use crate::actor::{Actor, Context, MsgClass};
use crate::builder::SimulationBuilder;
use crate::delay::DelayModel;
use crate::faults::FaultSchedule;
use crate::slab::PayloadSlab;
use crate::stats::NetStats;
use crate::time::Time;
use crate::trace::{Trace, TraceDetail, TraceEvent};
use dex_types::{Dest, ProcessId, StepDepth};
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Salt xored into the simulation seed for the chaos RNG, so fault
/// decisions never perturb the delay-model stream: a run with an empty
/// schedule is bit-identical to one built without chaos at all.
pub const CHAOS_SALT: u64 = 0xC4A0_5A1F_FA17_5EED;

/// A schedule boundary to surface as an observability event, ordered by
/// `(time, kind, subject)` for deterministic emission.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Boundary {
    PartitionOpen(u16),
    PartitionHeal(u16),
    Crash(ProcessId),
    Recover(ProcessId),
    /// Recovery of a [`CrashMode::Restart`](crate::CrashMode) window: emits
    /// the same `Recover` obs event, then reboots the actor through the
    /// [`Recoverable`](crate::Recoverable) hook when one is installed.
    Restart(ProcessId),
}

/// Chaos machinery, present only when the schedule is non-empty.
#[derive(Debug)]
struct ChaosState {
    schedule: FaultSchedule,
    /// Separate RNG stream for drop/dup decisions and duplicate jitter.
    rng: StdRng,
    /// Schedule boundaries sorted by time, emitted as obs events as
    /// virtual time passes them.
    boundaries: Vec<(u64, Boundary)>,
    next_boundary: usize,
}

impl ChaosState {
    fn new(schedule: FaultSchedule, seed: u64) -> Self {
        let mut boundaries: Vec<(u64, Boundary)> = Vec::new();
        for (i, p) in schedule.partitions().iter().enumerate() {
            boundaries.push((p.from, Boundary::PartitionOpen(i as u16)));
            boundaries.push((p.until, Boundary::PartitionHeal(i as u16)));
        }
        for c in schedule.crash_windows() {
            boundaries.push((c.from, Boundary::Crash(c.process)));
            if let Some(until) = c.until {
                boundaries.push((
                    until,
                    match c.mode {
                        crate::faults::CrashMode::Silence => Boundary::Recover(c.process),
                        crate::faults::CrashMode::Restart => Boundary::Restart(c.process),
                    },
                ));
            }
        }
        boundaries.sort_unstable();
        ChaosState {
            schedule,
            rng: StdRng::seed_from_u64(seed ^ CHAOS_SALT),
            boundaries,
            next_boundary: 0,
        }
    }
}

/// Compact heap entry: ordering fields plus a key into the payload slab.
///
/// `seq` is a monotone counter breaking `deliver_at` ties deterministically.
/// The entry is `Copy` and payload-free, so `BinaryHeap` comparisons and
/// sifts never touch (or move) message payloads — a multicast's payload is
/// stored once in the slab and shared by all its deliveries.
#[derive(Clone, Copy, Debug)]
struct QueueKey {
    deliver_at: Time,
    seq: u64,
    slot: u32,
    to: ProcessId,
}

impl PartialEq for QueueKey {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for QueueKey {}
impl PartialOrd for QueueKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.deliver_at
            .cmp(&other.deliver_at)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Result of running a simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunOutcome {
    /// Number of messages delivered during this run call.
    pub delivered: u64,
    /// `true` when the network drained completely; `false` when the event
    /// cap was hit first (e.g. a livelocked protocol).
    pub quiescent: bool,
    /// Virtual time at the end of the run.
    pub ended_at: Time,
}

/// A deterministic discrete-event simulation of `n` actors exchanging
/// messages over reliable asynchronous links.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Simulation<A: Actor> {
    actors: Vec<A>,
    queue: BinaryHeap<Reverse<QueueKey>>,
    /// In-flight payload storage; a `Dest::All` multicast holds one slot
    /// shared (refcounted) by all `n` deliveries.
    slab: PayloadSlab<A::Msg>,
    now: Time,
    seq: u64,
    rng: StdRng,
    delay: DelayModel,
    stats: NetStats,
    trace: Option<Trace>,
    /// Fault-injection state; `None` for an empty schedule, keeping the
    /// chaos-free hot path branch-cheap and byte-identical to older builds.
    chaos: Option<ChaosState>,
    started: bool,
    /// Recycled outbox buffer handed to each delivery's [`Context`], so the
    /// per-message hot path allocates nothing in the steady state.
    scratch: Vec<(Dest, A::Msg)>,
    /// Reboot hook for [`CrashMode::Restart`](crate::CrashMode) recoveries,
    /// installed via
    /// [`SimulationBuilder::recoverable`](crate::SimulationBuilder::recoverable).
    restart_hook: Option<RestartHook<A>>,
}

/// Signature of the reboot hook a [`CrashMode::Restart`](crate::CrashMode)
/// recovery invokes on the wiped actor: installed by
/// [`SimulationBuilder::recoverable`](crate::SimulationBuilder::recoverable),
/// it is the actor's `Recoverable::restart` taken as a plain fn pointer.
pub(crate) type RestartHook<A> = fn(&mut A, &mut Context<'_, <A as Actor>::Msg>);

impl<A: Actor> Simulation<A> {
    /// Starts a [`SimulationBuilder`] over the given actors (actor `i` is
    /// process `p_i`). This is the construction entry point; see the
    /// builder for the available knobs (seed, delay model, fault schedule,
    /// tracing).
    pub fn builder(actors: Vec<A>) -> SimulationBuilder<A> {
        SimulationBuilder::new(actors)
    }

    /// Assembles a simulation from the builder's parts.
    ///
    /// # Panics
    ///
    /// Panics if `actors` is empty or `faults` names a process outside
    /// `0..n`.
    pub(crate) fn from_parts(
        actors: Vec<A>,
        seed: u64,
        delay: DelayModel,
        faults: FaultSchedule,
        trace: Option<TraceDetail>,
        depth_hint: usize,
        restart_hook: Option<RestartHook<A>>,
    ) -> Self {
        assert!(!actors.is_empty(), "need at least one actor");
        faults.validate(actors.len());
        let chaos = (!faults.is_empty()).then(|| ChaosState::new(faults, seed));
        let mut stats = NetStats::default();
        stats.per_depth.reserve(depth_hint);
        Simulation {
            actors,
            queue: BinaryHeap::new(),
            slab: PayloadSlab::new(),
            now: Time::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            delay,
            stats,
            trace: trace.map(Trace::with_detail),
            chaos,
            started: false,
            scratch: Vec::new(),
            restart_hook,
        }
    }

    /// The fault schedule driving this simulation, when one was installed.
    pub fn faults(&self) -> Option<&FaultSchedule> {
        self.chaos.as_ref().map(|c| &c.schedule)
    }

    /// Enables trace recording **with payload rendering** — one string
    /// allocation per network event. Equivalent to
    /// [`enable_trace_detail`](Self::enable_trace_detail) with
    /// [`TraceDetail::Payloads`].
    pub fn enable_trace(&mut self) {
        self.enable_trace_detail(TraceDetail::Payloads);
    }

    /// Enables trace recording at an explicit detail level.
    /// [`TraceDetail::Events`] records endpoints/depth/timing only and
    /// allocates no strings.
    pub fn enable_trace_detail(&mut self, detail: TraceDetail) {
        self.trace = Some(Trace::with_detail(detail));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.actors.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Network statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Borrows an actor's state (e.g. to read its decision after the run).
    pub fn actor(&self, id: ProcessId) -> &A {
        &self.actors[id.index()]
    }

    /// Borrows all actors.
    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Mutably borrows an actor (for test setups that need to tweak state
    /// between steps).
    pub fn actor_mut(&mut self, id: ProcessId) -> &mut A {
        &mut self.actors[id.index()]
    }

    /// Enqueues one delivery of the payload in `slot`, sampling its link
    /// delay. For a `Dest::All` multicast this is called for `to = 0..n` in
    /// ascending order — exactly the order the old eager per-recipient
    /// expansion produced — so the RNG stream, `seq` numbering and thus the
    /// whole virtual-time schedule are unchanged by the slab fast path.
    fn schedule(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        depth: StepDepth,
        slot: u32,
        class: MsgClass,
        bytes: u64,
    ) {
        // The link delay is always drawn first, from the main RNG: chaos
        // decisions use their own stream, so the delay schedule of messages
        // untouched by faults is identical with and without a schedule.
        let delay = self.delay.sample(&mut self.rng, from, to);
        let mut deliver_at = self.now + delay;
        self.stats.record_send(depth, class);
        self.stats.bytes_on_wire += bytes;
        if let Some(rec) = self.actors[from.index()].recorder_mut() {
            rec.record_at(
                self.now.as_units(),
                depth.get(),
                dex_obs::EventKind::Send {
                    to: to.index() as u16,
                },
            );
        }
        if let Some(trace) = &mut self.trace {
            let payload = match trace.detail() {
                TraceDetail::Payloads => format!("{:?}", self.slab.payload(slot)),
                TraceDetail::Events => String::new(),
            };
            trace.push(TraceEvent::Send {
                from,
                to,
                depth,
                at: self.now,
                payload,
            });
        }
        // Route the delivery through the fault schedule. Decision order is
        // fixed (partition hold → drop → dup → crash hold) so a given
        // (seed, schedule) pair replays bit-for-bit.
        let mut duplicate_at = None;
        if let Some(chaos) = self.chaos.as_mut() {
            let send_at = self.now.as_units();
            if let Some(heal) = chaos.schedule.partition_hold(from, to, send_at) {
                // Held by the cut, then it travels: re-based on the heal
                // instant, so the message arrives after the partition —
                // a long-but-finite delay, exactly what asynchrony allows.
                deliver_at = Time::new(heal) + delay;
                self.stats.held_partition += 1;
            }
            let (p_drop, p_dup) = chaos.schedule.link_probs(from, to, send_at);
            if p_drop > 0.0 && chaos.rng.random_range(0.0f64..1.0) < p_drop {
                self.drop_message(from, to, depth, slot);
                return;
            }
            if p_dup > 0.0 && chaos.rng.random_range(0.0f64..1.0) < p_dup {
                duplicate_at = Some(deliver_at + chaos.rng.random_range(1u64..=8));
            }
            match chaos.schedule.crash_hold(to, deliver_at.as_units()) {
                Some(Some(recovery)) => {
                    // The recipient is down: its inbox queues until recovery.
                    deliver_at = Time::new(recovery);
                    self.stats.held_crash += 1;
                }
                Some(None) => {
                    // The recipient never comes back; the message is lost.
                    self.drop_message(from, to, depth, slot);
                    return;
                }
                None => {}
            }
        }
        self.seq += 1;
        self.queue.push(Reverse(QueueKey {
            deliver_at,
            seq: self.seq,
            slot,
            to,
        }));
        if let Some(dup_at) = duplicate_at {
            self.duplicate_message(from, to, depth, slot, dup_at);
        }
    }

    /// Destroys a scheduled delivery: the send already happened (and was
    /// recorded), the network loses the message.
    fn drop_message(&mut self, from: ProcessId, to: ProcessId, depth: StepDepth, slot: u32) {
        self.stats.dropped += 1;
        if let Some(rec) = self.actors[from.index()].recorder_mut() {
            rec.record_at(
                self.now.as_units(),
                depth.get(),
                dex_obs::EventKind::LinkDrop {
                    to: to.index() as u16,
                },
            );
        }
        self.slab.release(slot);
    }

    /// Enqueues a second delivery of `slot` at `dup_at`, sharing the
    /// original payload (no clone). The duplicate is itself subject to the
    /// recipient's crash windows.
    fn duplicate_message(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        depth: StepDepth,
        slot: u32,
        dup_at: Time,
    ) {
        let chaos = self.chaos.as_mut().expect("duplication implies chaos");
        let deliver_at = match chaos.schedule.crash_hold(to, dup_at.as_units()) {
            Some(Some(recovery)) => {
                self.stats.held_crash += 1;
                Time::new(recovery)
            }
            Some(None) => return, // recipient never recovers: dup is moot
            None => dup_at,
        };
        self.stats.duplicated += 1;
        if let Some(rec) = self.actors[from.index()].recorder_mut() {
            rec.record_at(
                self.now.as_units(),
                depth.get(),
                dex_obs::EventKind::LinkDup {
                    to: to.index() as u16,
                },
            );
        }
        self.slab.retain(slot);
        self.seq += 1;
        self.queue.push(Reverse(QueueKey {
            deliver_at,
            seq: self.seq,
            slot,
            to,
        }));
    }

    /// The instant of the next unprocessed schedule boundary, if any.
    fn next_boundary_at(&self) -> Option<u64> {
        let chaos = self.chaos.as_ref()?;
        chaos.boundaries.get(chaos.next_boundary).map(|&(at, _)| at)
    }

    /// Processes exactly one schedule boundary (partition open/heal,
    /// crash/recover/restart): emits its obs event, stamped with its own
    /// instant, and — for a restart recovery — reboots the victim through
    /// the installed [`Recoverable`](crate::Recoverable) hook. Crash
    /// transitions land on the victim's recorder; partition transitions on
    /// every process (the network state changed for all).
    fn process_next_boundary(&mut self) {
        let Some(chaos) = self.chaos.as_mut() else {
            return;
        };
        let Some(&(at, boundary)) = chaos.boundaries.get(chaos.next_boundary) else {
            return;
        };
        chaos.next_boundary += 1;
        match boundary {
            Boundary::Crash(p) => {
                if let Some(rec) = self.actors[p.index()].recorder_mut() {
                    rec.record_at(at, 0, dex_obs::EventKind::Crash);
                }
            }
            Boundary::Recover(p) => {
                if let Some(rec) = self.actors[p.index()].recorder_mut() {
                    rec.record_at(at, 0, dex_obs::EventKind::Recover);
                }
            }
            Boundary::Restart(p) => {
                if let Some(rec) = self.actors[p.index()].recorder_mut() {
                    rec.record_at(at, 0, dex_obs::EventKind::Recover);
                }
                self.restart_actor(p, at);
            }
            Boundary::PartitionOpen(id) => {
                for actor in &mut self.actors {
                    if let Some(rec) = actor.recorder_mut() {
                        rec.record_at(at, 0, dex_obs::EventKind::PartitionOpen { id });
                    }
                }
            }
            Boundary::PartitionHeal(id) => {
                for actor in &mut self.actors {
                    if let Some(rec) = actor.recorder_mut() {
                        rec.record_at(at, 0, dex_obs::EventKind::PartitionHeal { id });
                    }
                }
            }
        }
    }

    /// Reboots `p` at the recovery instant `at` of a restart-mode crash
    /// window: virtual time advances to the reboot, the hook rebuilds the
    /// actor from persisted state, and its recovery sends and timers enter
    /// the network there with causal depth 1 (a reboot starts a fresh
    /// causal chain, like `on_start`).
    fn restart_actor(&mut self, p: ProcessId, at: u64) {
        let Some(hook) = self.restart_hook else {
            return;
        };
        self.now = self.now.max(Time::new(at));
        let n = self.actors.len();
        if let Some(rec) = self.actors[p.index()].recorder_mut() {
            rec.set_clock(self.now.as_units(), 0);
        }
        let buf = std::mem::take(&mut self.scratch);
        let mut ctx = Context::with_buffer(p, n, self.now, StepDepth::ZERO, &mut self.rng, buf);
        hook(&mut self.actors[p.index()], &mut ctx);
        self.stats.payload_clones += ctx.cloned();
        let (mut outbox, mut outbox_at, mut timers) = ctx.into_parts();
        self.dispatch(p, &mut outbox, StepDepth::ONE);
        self.dispatch_at(p, &mut outbox_at);
        self.dispatch_timers(p, &mut timers, StepDepth::ONE);
        self.scratch = outbox;
    }

    /// Enqueues the timers an actor armed via
    /// [`Context::send_self_after`]: exact-delay self-deliveries that
    /// bypass the delay model and link faults (drawing nothing from any RNG
    /// stream) but respect the actor's own crash windows — a silence window
    /// defers the tick to recovery, a restart or permanent crash loses it.
    fn dispatch_timers(
        &mut self,
        me: ProcessId,
        timers: &mut Vec<(u64, A::Msg)>,
        depth: StepDepth,
    ) {
        for (delay, payload) in timers.drain(..) {
            let slot = self.slab.insert(payload, me, depth, 1);
            let mut deliver_at = self.now + delay;
            self.stats
                .record_send(depth, A::msg_class(self.slab.payload(slot)));
            if let Some(rec) = self.actors[me.index()].recorder_mut() {
                rec.record_at(
                    self.now.as_units(),
                    depth.get(),
                    dex_obs::EventKind::Send {
                        to: me.index() as u16,
                    },
                );
            }
            if let Some(trace) = &mut self.trace {
                let payload = match trace.detail() {
                    TraceDetail::Payloads => format!("{:?}", self.slab.payload(slot)),
                    TraceDetail::Events => String::new(),
                };
                trace.push(TraceEvent::Send {
                    from: me,
                    to: me,
                    depth,
                    at: self.now,
                    payload,
                });
            }
            if let Some(chaos) = self.chaos.as_mut() {
                match chaos.schedule.crash_hold(me, deliver_at.as_units()) {
                    Some(Some(recovery)) => {
                        deliver_at = Time::new(recovery);
                        self.stats.held_crash += 1;
                    }
                    Some(None) => {
                        self.drop_message(me, me, depth, slot);
                        continue;
                    }
                    None => {}
                }
            }
            self.seq += 1;
            self.queue.push(Reverse(QueueKey {
                deliver_at,
                seq: self.seq,
                slot,
                to: me,
            }));
        }
    }

    fn dispatch(&mut self, from: ProcessId, outbox: &mut Vec<(Dest, A::Msg)>, depth: StepDepth) {
        let n = self.actors.len();
        for (dest, payload) in outbox.drain(..) {
            self.dispatch_one(from, dest, payload, depth, n);
        }
    }

    /// Dispatches depth-stamped sends queued via
    /// [`Context::send_dest_at`]: each entry travels at its own explicit
    /// causal depth instead of the handler default. Used by the
    /// echo-aggregation flush, whose batches must arrive at the depth
    /// their unbatched echoes would have had.
    fn dispatch_at(&mut self, from: ProcessId, outbox_at: &mut Vec<(Dest, A::Msg, StepDepth)>) {
        let n = self.actors.len();
        for (dest, payload, depth) in outbox_at.drain(..) {
            self.dispatch_one(from, dest, payload, depth, n);
        }
    }

    fn dispatch_one(
        &mut self,
        from: ProcessId,
        dest: Dest,
        payload: A::Msg,
        depth: StepDepth,
        n: usize,
    ) {
        // Class and size are computed once per dispatched message and
        // passed down: for a `Dest::All` multicast `schedule` runs n times,
        // and re-deriving them per recipient would put a payload walk on
        // the delivery fast path. Echo entries carried inside a batch are
        // likewise counted once, like `multicasts` — not per recipient.
        let class = A::msg_class(&payload);
        let bytes = A::msg_bytes(&payload) as u64;
        if let MsgClass::Batch(entries) = class {
            self.stats.echoes_batched += entries as u64;
        }
        match dest {
            Dest::To(to) => {
                let slot = self.slab.insert(payload, from, depth, 1);
                self.schedule(from, to, depth, slot, class, bytes);
            }
            Dest::All => {
                // One shared payload, n pending deliveries, zero clones.
                self.stats.multicasts += 1;
                let slot = self.slab.insert(payload, from, depth, n as u32);
                for i in 0..n {
                    self.schedule(from, ProcessId::new(i), depth, slot, class, bytes);
                }
            }
        }
    }

    /// Runs `on_start` on every actor (idempotent; also called implicitly by
    /// [`run`](Self::run) / [`step`](Self::step)).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let n = self.actors.len();
        for i in 0..n {
            let me = ProcessId::new(i);
            let buf = std::mem::take(&mut self.scratch);
            let mut ctx =
                Context::with_buffer(me, n, self.now, StepDepth::ZERO, &mut self.rng, buf);
            self.actors[i].on_start(&mut ctx);
            self.stats.payload_clones += ctx.cloned();
            let (mut outbox, mut outbox_at, mut timers) = ctx.into_parts();
            self.dispatch(me, &mut outbox, StepDepth::ONE);
            self.dispatch_at(me, &mut outbox_at);
            self.dispatch_timers(me, &mut timers, StepDepth::ONE);
            self.scratch = outbox;
        }
    }

    /// Delivers the next queued message, advancing virtual time. Returns the
    /// `(from, to, depth)` of the delivered message, or `None` when the
    /// network is quiescent.
    pub fn step(&mut self) -> Option<(ProcessId, ProcessId, StepDepth)> {
        self.start();
        // Interleave schedule boundaries with deliveries in time order: a
        // boundary at `t` fires before a delivery at `t` (matching the old
        // flush order), and a restart hook may wake a quiescent network —
        // its recovery sends become new deliveries, so re-examine the queue
        // after every boundary.
        loop {
            let delivery = self.queue.peek().map(|&Reverse(k)| k.deliver_at.as_units());
            match (delivery, self.next_boundary_at()) {
                (None, None) => return None,
                (Some(_), None) => break,
                (Some(d), Some(b)) if b > d => break,
                _ => self.process_next_boundary(),
            }
        }
        let Reverse(key) = self.queue.pop().expect("a delivery was peeked above");
        self.now = key.deliver_at;
        let to = key.to;
        let (from, depth) = self.slab.meta(key.slot);
        self.stats.record_delivery(depth);
        if let Some(trace) = &mut self.trace {
            let payload = match trace.detail() {
                TraceDetail::Payloads => format!("{:?}", self.slab.payload(key.slot)),
                TraceDetail::Events => String::new(),
            };
            trace.push(TraceEvent::Deliver {
                from,
                to,
                depth,
                at: self.now,
                payload,
            });
        }
        let n = self.actors.len();
        if let Some(rec) = self.actors[to.index()].recorder_mut() {
            // Stamp the recipient's clock so protocol events recorded inside
            // the handler carry the delivery's virtual time and causal depth.
            rec.set_clock(self.now.as_units(), depth.get());
            rec.record(dex_obs::EventKind::Deliver {
                from: from.index() as u16,
            });
        }
        let buf = std::mem::take(&mut self.scratch);
        let mut ctx = Context::with_buffer(to, n, self.now, depth, &mut self.rng, buf);
        self.actors[to.index()].on_message(from, self.slab.payload(key.slot), &mut ctx);
        self.stats.payload_clones += ctx.cloned();
        let (mut outbox, mut outbox_at, mut timers) = ctx.into_parts();
        self.slab.release(key.slot);
        self.dispatch(to, &mut outbox, depth.next());
        self.dispatch_at(to, &mut outbox_at);
        self.dispatch_timers(to, &mut timers, depth.next());
        self.scratch = outbox;
        Some((from, to, depth))
    }

    /// Runs until the network drains or `max_events` deliveries have
    /// happened, whichever comes first.
    pub fn run(&mut self, max_events: u64) -> RunOutcome {
        let mut delivered = 0;
        while delivered < max_events {
            if self.step().is_none() {
                return RunOutcome {
                    delivered,
                    quiescent: true,
                    ended_at: self.now,
                };
            }
            delivered += 1;
        }
        RunOutcome {
            delivered,
            quiescent: self.queue.is_empty(),
            ended_at: self.now,
        }
    }

    /// Runs until `stop(actors)` returns `true`, the network drains, or
    /// `max_events` deliveries have happened. Returns the outcome; check
    /// `stop` again afterwards to distinguish success from exhaustion.
    pub fn run_until<F>(&mut self, max_events: u64, mut stop: F) -> RunOutcome
    where
        F: FnMut(&[A]) -> bool,
    {
        self.start();
        let mut delivered = 0;
        while delivered < max_events && !stop(&self.actors) {
            if self.step().is_none() {
                return RunOutcome {
                    delivered,
                    quiescent: true,
                    ended_at: self.now,
                };
            }
            delivered += 1;
        }
        RunOutcome {
            delivered,
            quiescent: self.queue.is_empty(),
            ended_at: self.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every received message back `count` times, decrementing.
    struct Echo {
        received: Vec<(ProcessId, u32, StepDepth)>,
    }

    impl Actor for Echo {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.me() == ProcessId::new(0) {
                ctx.broadcast_others(2);
            }
        }

        fn on_message(&mut self, from: ProcessId, msg: &u32, ctx: &mut Context<'_, u32>) {
            self.received.push((from, *msg, ctx.depth()));
            if *msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    fn echo_sim(n: usize, seed: u64) -> Simulation<Echo> {
        Simulation::builder(
            (0..n)
                .map(|_| Echo {
                    received: Vec::new(),
                })
                .collect(),
        )
        .seed(seed)
        .delay(DelayModel::Uniform { min: 1, max: 10 })
        .build()
    }

    #[test]
    fn runs_to_quiescence() {
        let mut sim = echo_sim(3, 1);
        let out = sim.run(1_000);
        assert!(out.quiescent);
        // p0 broadcasts 2 to p1,p2; each replies 1; p0 replies 0 to each; done.
        // Total deliveries: 2 + 2 + 2 = 6.
        assert_eq!(out.delivered, 6);
        assert_eq!(sim.stats().delivered, 6);
    }

    #[test]
    fn causal_depth_increases_along_chains() {
        let mut sim = echo_sim(2, 3);
        sim.run(1_000);
        let p0 = sim.actor(ProcessId::new(0));
        let p1 = sim.actor(ProcessId::new(1));
        // p1 got the initial 2 at depth 1 and the follow-up 0 at depth 3.
        assert_eq!(p1.received[0].2, StepDepth::new(1));
        assert_eq!(p1.received[1].2, StepDepth::new(3));
        // p0 got the reply 1 at depth 2.
        assert_eq!(p0.received[0].2, StepDepth::new(2));
        // Deepest message actually sent is the final 0-reply at depth 3.
        assert_eq!(sim.stats().max_depth, StepDepth::new(3));
    }

    #[test]
    fn event_cap_stops_runaway() {
        /// Two actors ping forever.
        struct Forever;
        impl Actor for Forever {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.broadcast_others(());
            }
            fn on_message(&mut self, from: ProcessId, _: &(), ctx: &mut Context<'_, ()>) {
                ctx.send(from, ());
            }
        }
        let mut sim = Simulation::builder(vec![Forever, Forever])
            .delay(DelayModel::Constant(1))
            .build();
        let out = sim.run(100);
        assert_eq!(out.delivered, 100);
        assert!(!out.quiescent);
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        let render = |seed: u64| {
            let mut sim = echo_sim(4, seed);
            sim.enable_trace();
            sim.run(10_000);
            sim.trace().unwrap().render()
        };
        assert_eq!(render(77), render(77));
        assert_ne!(render(77), render(78));
    }

    #[test]
    fn events_only_trace_matches_payload_trace_shape() {
        let run = |detail: TraceDetail| {
            let mut sim = echo_sim(4, 21);
            sim.enable_trace_detail(detail);
            sim.run(10_000);
            sim.trace().unwrap().clone()
        };
        let full = run(TraceDetail::Payloads);
        let lean = run(TraceDetail::Events);
        assert_eq!(full.len(), lean.len());
        for (f, l) in full.events().iter().zip(lean.events()) {
            match (f, l) {
                (
                    TraceEvent::Send {
                        from: f1,
                        to: t1,
                        at: a1,
                        payload: p1,
                        ..
                    },
                    TraceEvent::Send {
                        from: f2,
                        to: t2,
                        at: a2,
                        payload: p2,
                        ..
                    },
                )
                | (
                    TraceEvent::Deliver {
                        from: f1,
                        to: t1,
                        at: a1,
                        payload: p1,
                        ..
                    },
                    TraceEvent::Deliver {
                        from: f2,
                        to: t2,
                        at: a2,
                        payload: p2,
                        ..
                    },
                ) => {
                    assert_eq!((f1, t1, a1), (f2, t2, a2));
                    assert!(!p1.is_empty() && p2.is_empty());
                }
                _ => panic!("event kinds diverged"),
            }
        }
    }

    #[test]
    fn run_until_stops_at_predicate() {
        let mut sim = echo_sim(3, 5);
        let out = sim.run_until(1_000, |actors| {
            actors.iter().map(|a| a.received.len()).sum::<usize>() >= 2
        });
        assert!(out.delivered <= 6);
        let total: usize = sim.actors().iter().map(|a| a.received.len()).sum();
        assert!(total >= 2);
    }

    #[test]
    fn virtual_time_is_monotone() {
        let mut sim = echo_sim(3, 9);
        sim.start();
        let mut last = Time::ZERO;
        while sim.step().is_some() {
            assert!(sim.now() >= last);
            last = sim.now();
        }
    }

    #[test]
    fn self_messages_are_delivered() {
        struct SelfSend {
            got: bool,
        }
        impl Actor for SelfSend {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                let me = ctx.me();
                ctx.send(me, ());
            }
            fn on_message(&mut self, from: ProcessId, _: &(), ctx: &mut Context<'_, ()>) {
                assert_eq!(from, ctx.me());
                self.got = true;
            }
        }
        let mut sim = Simulation::builder(vec![SelfSend { got: false }])
            .delay(DelayModel::Constant(1))
            .build();
        sim.run(10);
        assert!(sim.actor(ProcessId::new(0)).got);
    }

    /// A payload whose clones are observable, for the zero-clone assertions.
    #[derive(Debug)]
    struct CountedPayload(std::sync::Arc<std::sync::atomic::AtomicU64>);
    impl Clone for CountedPayload {
        fn clone(&self) -> Self {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            CountedPayload(self.0.clone())
        }
    }

    struct Gossip {
        counter: std::sync::Arc<std::sync::atomic::AtomicU64>,
        rounds: u32,
        got: u32,
    }
    impl Actor for Gossip {
        type Msg = (u32, CountedPayload);
        fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
            if ctx.me() == ProcessId::new(0) {
                ctx.broadcast((self.rounds, CountedPayload(self.counter.clone())));
            }
        }
        fn on_message(
            &mut self,
            _from: ProcessId,
            msg: &Self::Msg,
            ctx: &mut Context<'_, Self::Msg>,
        ) {
            self.got += 1;
            if msg.0 > 0 {
                ctx.broadcast((msg.0 - 1, CountedPayload(self.counter.clone())));
            }
        }
    }

    #[test]
    fn multicast_payloads_are_never_cloned_by_the_network() {
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let n = 5;
        let mut sim = Simulation::builder(
            (0..n)
                .map(|_| Gossip {
                    counter: counter.clone(),
                    rounds: 2,
                    got: 0,
                })
                .collect(),
        )
        .seed(3)
        .delay(DelayModel::Uniform { min: 1, max: 4 })
        .build();
        let out = sim.run(1_000_000);
        assert!(out.quiescent);
        // Every broadcast reached all n processes…
        assert_eq!(sim.stats().delivered, sim.stats().multicasts * n as u64);
        assert!(sim.stats().multicasts > 1);
        // …and neither the actors nor the network ever cloned a payload.
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 0);
        assert_eq!(sim.stats().payload_clones, 0);
    }

    fn echo_sim_with(n: usize, seed: u64, faults: FaultSchedule) -> Simulation<Echo> {
        Simulation::builder(
            (0..n)
                .map(|_| Echo {
                    received: Vec::new(),
                })
                .collect(),
        )
        .seed(seed)
        .delay(DelayModel::Uniform { min: 1, max: 10 })
        .faults(faults)
        .build()
    }

    #[test]
    fn empty_schedule_is_bit_identical_to_no_schedule() {
        let render = |faults: Option<FaultSchedule>| {
            let mut sim = match faults {
                Some(f) => echo_sim_with(4, 77, f),
                None => echo_sim(4, 77),
            };
            sim.enable_trace();
            sim.run(10_000);
            sim.trace().unwrap().render()
        };
        assert_eq!(render(None), render(Some(FaultSchedule::none())));
    }

    #[test]
    fn untouched_messages_keep_their_schedule_under_chaos() {
        // A schedule whose windows all open long after quiescence must not
        // perturb a single delivery: chaos randomness lives on its own
        // stream and windowed faults match nothing here.
        let chaos = FaultSchedule::new()
            .partition([ProcessId::new(0)], 1_000_000, 2_000_000)
            .crash(ProcessId::new(1), 1_000_000, 1_500_000)
            .lossy_link_during(None, None, 0.9, 0.9, 1_000_000, 2_000_000);
        let render = |faults: Option<FaultSchedule>| {
            let mut sim = match faults {
                Some(f) => echo_sim_with(4, 99, f),
                None => echo_sim(4, 99),
            };
            sim.enable_trace();
            sim.run(10_000);
            sim.trace().unwrap().render()
        };
        assert_eq!(render(None), render(Some(chaos)));
    }

    #[test]
    fn certain_drop_loses_every_message() {
        let mut sim = echo_sim_with(3, 5, FaultSchedule::new().lossy_link(None, None, 1.0, 0.0));
        let out = sim.run(10_000);
        assert!(out.quiescent);
        assert_eq!(out.delivered, 0, "every delivery was dropped");
        assert_eq!(sim.stats().dropped, sim.stats().sent);
        assert!(sim.stats().sent > 0);
    }

    #[test]
    fn certain_dup_doubles_every_delivery() {
        let mut sim = echo_sim_with(3, 5, FaultSchedule::new().dup_all(1.0));
        let out = sim.run(100_000);
        assert!(out.quiescent);
        assert_eq!(sim.stats().duplicated, sim.stats().sent);
        assert_eq!(sim.stats().delivered, sim.stats().sent * 2);
    }

    #[test]
    fn partition_defers_cross_cut_deliveries_past_the_heal() {
        // p0 broadcasts at t=0; the cut {p0} vs {p1, p2} is open over
        // [0, 500), so nothing crosses it before t=500 — but everything
        // still arrives (held, not lost).
        let mut sim = echo_sim_with(
            3,
            1,
            FaultSchedule::new().partition([ProcessId::new(0)], 0, 500),
        );
        sim.start();
        while let Some((from, to, _)) = sim.step() {
            if from != to && (from == ProcessId::new(0)) != (to == ProcessId::new(0)) {
                assert!(
                    sim.now().as_units() > 500,
                    "cross-cut delivery at {} during the partition",
                    sim.now()
                );
            }
        }
        assert_eq!(sim.stats().dropped, 0);
        assert_eq!(sim.stats().delivered, 6, "same traffic as the clean run");
        assert!(sim.stats().held_partition > 0);
    }

    #[test]
    fn crash_window_defers_deliveries_to_recovery() {
        let victim = ProcessId::new(1);
        let mut sim = echo_sim_with(3, 1, FaultSchedule::new().crash(victim, 1, 800));
        sim.start();
        while let Some((_, to, _)) = sim.step() {
            if to == victim {
                assert!(
                    sim.now().as_units() >= 800,
                    "delivery to the crashed process at {}",
                    sim.now()
                );
            }
        }
        assert!(sim.stats().held_crash > 0);
        assert_eq!(sim.stats().dropped, 0);
    }

    #[test]
    fn permanent_crash_drops_inbound_traffic() {
        let victim = ProcessId::new(1);
        let mut sim = echo_sim_with(3, 1, FaultSchedule::new().crash_forever(victim, 1));
        let out = sim.run(10_000);
        assert!(out.quiescent);
        assert!(sim.actor(victim).received.is_empty());
        assert!(sim.stats().dropped > 0);
    }

    #[test]
    fn chaos_runs_replay_bit_for_bit() {
        let chaos = || {
            FaultSchedule::new()
                .partition([ProcessId::new(0), ProcessId::new(1)], 3, 40)
                .crash(ProcessId::new(2), 2, 30)
                .lossy_link(None, None, 0.3, 0.3)
        };
        let render = |seed: u64| {
            let mut sim = echo_sim_with(5, seed, chaos());
            sim.enable_trace();
            sim.run(100_000);
            (sim.trace().unwrap().render(), sim.stats().clone())
        };
        assert_eq!(render(11), render(11));
        assert_ne!(render(11).0, render(12).0);
    }

    #[test]
    fn duplicated_multicast_payloads_are_shared_not_cloned() {
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let n = 5;
        let mut sim = Simulation::builder(
            (0..n)
                .map(|_| Gossip {
                    counter: counter.clone(),
                    rounds: 2,
                    got: 0,
                })
                .collect::<Vec<_>>(),
        )
        .seed(3)
        .delay(DelayModel::Uniform { min: 1, max: 4 })
        .faults(FaultSchedule::new().dup_all(0.5))
        .build();
        let out = sim.run(1_000_000);
        assert!(out.quiescent);
        assert!(sim.stats().duplicated > 0);
        // Duplicates retain the slab slot; the network still never clones.
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 0);
        assert_eq!(sim.stats().payload_clones, 0);
        assert_eq!(sim.slab.live(), 0, "all slots released despite dups");
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn builder_rejects_schedules_naming_unknown_processes() {
        let _ = echo_sim_with(2, 0, FaultSchedule::new().crash(ProcessId::new(7), 1, 2));
    }

    /// Mirrors every delivery to a durable "disk"; restart wipes the
    /// volatile copy, reloads from disk, and announces itself.
    struct Persistent {
        volatile: Vec<u32>,
        disk: Vec<u32>,
        restarts: u32,
    }

    impl Actor for Persistent {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.me() == ProcessId::new(0) {
                ctx.broadcast_others(7);
            }
        }
        fn on_message(&mut self, _from: ProcessId, msg: &u32, _ctx: &mut Context<'_, u32>) {
            self.volatile.push(*msg);
            self.disk.push(*msg);
        }
    }

    impl crate::actor::Recoverable for Persistent {
        fn restart(&mut self, ctx: &mut Context<'_, u32>) {
            self.restarts += 1;
            self.volatile = self.disk.clone();
            ctx.broadcast_others(99);
        }
    }

    fn persistent_sim(n: usize, faults: FaultSchedule) -> Simulation<Persistent> {
        Simulation::builder(
            (0..n)
                .map(|_| Persistent {
                    volatile: Vec::new(),
                    disk: Vec::new(),
                    restarts: 0,
                })
                .collect(),
        )
        .seed(1)
        .delay(DelayModel::Uniform { min: 1, max: 10 })
        .faults(faults)
        .recoverable()
        .build()
    }

    #[test]
    fn restart_loses_the_window_and_invokes_the_reboot_hook() {
        let victim = ProcessId::new(1);
        let mut sim = persistent_sim(3, FaultSchedule::new().crash_restart(victim, 1, 500));
        let out = sim.run(10_000);
        assert!(out.quiescent);
        // The initial broadcast landed inside the window: genuinely lost.
        assert!(sim.stats().dropped > 0);
        assert!(sim.actor(victim).disk.is_empty());
        // The hook ran once, at the recovery instant, and its recovery
        // broadcast reached the other processes.
        assert_eq!(sim.actor(victim).restarts, 1);
        for other in [ProcessId::new(0), ProcessId::new(2)] {
            assert_eq!(sim.actor(other).restarts, 0);
            assert!(sim.actor(other).disk.contains(&99));
        }
    }

    #[test]
    fn restart_recovery_traffic_wakes_a_quiescent_network() {
        // All pre-crash traffic drains long before the recovery instant:
        // the queue is empty when the boundary fires, yet the run must
        // continue and deliver the hook's sends.
        let victim = ProcessId::new(1);
        let mut sim = persistent_sim(3, FaultSchedule::new().crash_restart(victim, 1, 100_000));
        let out = sim.run(10_000);
        assert!(out.quiescent);
        assert_eq!(sim.actor(victim).restarts, 1);
        assert!(sim.actor(ProcessId::new(0)).disk.contains(&99));
        assert!(out.ended_at.as_units() > 100_000, "delivered after reboot");
    }

    #[test]
    fn without_the_hook_restart_windows_only_lose_traffic() {
        let victim = ProcessId::new(1);
        let mut sim = {
            let actors = (0..3)
                .map(|_| Persistent {
                    volatile: Vec::new(),
                    disk: Vec::new(),
                    restarts: 0,
                })
                .collect();
            Simulation::builder(actors)
                .seed(1)
                .delay(DelayModel::Uniform { min: 1, max: 10 })
                .faults(FaultSchedule::new().crash_restart(victim, 1, 500))
                .build()
        };
        let out = sim.run(10_000);
        assert!(out.quiescent);
        assert_eq!(sim.actor(victim).restarts, 0, "no hook, no reboot");
        assert!(sim.stats().dropped > 0);
    }

    /// Arms a chain of exact-delay self-timers.
    struct TickTock {
        ticks: Vec<(u64, ProcessId)>,
    }
    impl Actor for TickTock {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.send_self_after(25, 1);
        }
        fn on_message(&mut self, from: ProcessId, msg: &u32, ctx: &mut Context<'_, u32>) {
            self.ticks.push((ctx.now().as_units(), from));
            if *msg < 3 {
                ctx.send_self_after(25, msg + 1);
            }
        }
    }

    #[test]
    fn timers_fire_exactly_and_locally() {
        let mut sim = Simulation::builder(vec![TickTock { ticks: Vec::new() }])
            .seed(9)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .build();
        let out = sim.run(1_000);
        assert!(out.quiescent);
        let me = ProcessId::new(0);
        // Exact delays — the delay model was never consulted.
        assert_eq!(
            sim.actor(me).ticks,
            vec![(25, me), (50, me), (75, me)],
            "timers bypass the delay model and deliver exactly on schedule"
        );
    }

    #[test]
    fn timers_respect_crash_windows() {
        // A tick due at t=25 inside a silence window [10, 400) is deferred
        // to the recovery instant; under a restart window it is lost.
        let me = ProcessId::new(0);
        let run = |faults: FaultSchedule| {
            let mut sim = Simulation::builder(vec![TickTock { ticks: Vec::new() }])
                .seed(9)
                .faults(faults)
                .build();
            sim.run(1_000);
            sim.actor(me).ticks.clone()
        };
        let deferred = run(FaultSchedule::new().crash(me, 10, 400));
        assert_eq!(deferred.first(), Some(&(400, me)), "deferred to recovery");
        let lost = run(FaultSchedule::new().crash_restart(me, 10, 400));
        assert!(lost.is_empty(), "restart amnesia loses pending timers");
    }

    #[test]
    fn slab_slots_are_recycled_after_delivery() {
        let mut sim = echo_sim(4, 13);
        let out = sim.run(1_000_000);
        assert!(out.quiescent);
        assert_eq!(sim.slab.live(), 0, "all slots released");
        assert!(
            sim.slab.capacity() < sim.stats().sent as usize,
            "slots were reused across the run (capacity {} vs {} sends)",
            sim.slab.capacity(),
            sim.stats().sent
        );
    }
}
