//! The discrete-event simulation engine.

use crate::actor::{Actor, Context};
use crate::delay::DelayModel;
use crate::stats::NetStats;
use crate::time::Time;
use crate::trace::{Trace, TraceEvent};
use dex_types::{ProcessId, StepDepth};
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An in-flight message.
#[derive(Clone, Debug)]
struct Envelope<M> {
    from: ProcessId,
    to: ProcessId,
    depth: StepDepth,
    payload: M,
}

/// Heap entry ordered by `(deliver_at, seq)`; `seq` is a monotone counter
/// breaking ties deterministically.
#[derive(Debug)]
struct Queued<M> {
    deliver_at: Time,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.deliver_at
            .cmp(&other.deliver_at)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Result of running a simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunOutcome {
    /// Number of messages delivered during this run call.
    pub delivered: u64,
    /// `true` when the network drained completely; `false` when the event
    /// cap was hit first (e.g. a livelocked protocol).
    pub quiescent: bool,
    /// Virtual time at the end of the run.
    pub ended_at: Time,
}

/// A deterministic discrete-event simulation of `n` actors exchanging
/// messages over reliable asynchronous links.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Simulation<A: Actor> {
    actors: Vec<A>,
    queue: BinaryHeap<Reverse<Queued<A::Msg>>>,
    now: Time,
    seq: u64,
    rng: StdRng,
    delay: DelayModel,
    stats: NetStats,
    trace: Option<Trace>,
    started: bool,
    /// Recycled outbox buffer handed to each delivery's [`Context`], so the
    /// per-message hot path allocates nothing in the steady state.
    scratch: Vec<(ProcessId, A::Msg)>,
}

impl<A: Actor> Simulation<A> {
    /// Creates a simulation over the given actors (actor `i` is process
    /// `p_i`), a seed for all randomness (delays and actor RNG), and a delay
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if `actors` is empty.
    pub fn new(actors: Vec<A>, seed: u64, delay: DelayModel) -> Self {
        assert!(!actors.is_empty(), "need at least one actor");
        Simulation {
            actors,
            queue: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            delay,
            stats: NetStats::default(),
            trace: None,
            started: false,
            scratch: Vec::new(),
        }
    }

    /// Enables trace recording (allocates one string per network event).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::default());
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.actors.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Network statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Borrows an actor's state (e.g. to read its decision after the run).
    pub fn actor(&self, id: ProcessId) -> &A {
        &self.actors[id.index()]
    }

    /// Borrows all actors.
    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Mutably borrows an actor (for test setups that need to tweak state
    /// between steps).
    pub fn actor_mut(&mut self, id: ProcessId) -> &mut A {
        &mut self.actors[id.index()]
    }

    fn dispatch(&mut self, from: ProcessId, outbox: &mut Vec<(ProcessId, A::Msg)>, depth: StepDepth)
    where
        A::Msg: core::fmt::Debug,
    {
        for (to, payload) in outbox.drain(..) {
            let delay = self.delay.sample(&mut self.rng, from, to);
            let deliver_at = self.now + delay;
            self.stats.record_send(depth);
            if let Some(rec) = self.actors[from.index()].recorder_mut() {
                rec.record_at(
                    self.now.as_units(),
                    depth.get(),
                    dex_obs::EventKind::Send {
                        to: to.index() as u16,
                    },
                );
            }
            if let Some(trace) = &mut self.trace {
                trace.push(TraceEvent::Send {
                    from,
                    to,
                    depth,
                    at: self.now,
                    payload: format!("{payload:?}"),
                });
            }
            self.seq += 1;
            self.queue.push(Reverse(Queued {
                deliver_at,
                seq: self.seq,
                env: Envelope {
                    from,
                    to,
                    depth,
                    payload,
                },
            }));
        }
    }

    /// Runs `on_start` on every actor (idempotent; also called implicitly by
    /// [`run`](Self::run) / [`step`](Self::step)).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let n = self.actors.len();
        for i in 0..n {
            let me = ProcessId::new(i);
            let buf = std::mem::take(&mut self.scratch);
            let mut ctx =
                Context::with_buffer(me, n, self.now, StepDepth::ZERO, &mut self.rng, buf);
            self.actors[i].on_start(&mut ctx);
            let mut outbox = ctx.into_outbox();
            self.dispatch(me, &mut outbox, StepDepth::ONE);
            self.scratch = outbox;
        }
    }

    /// Delivers the next queued message, advancing virtual time. Returns the
    /// `(from, to, depth)` of the delivered message, or `None` when the
    /// network is quiescent.
    pub fn step(&mut self) -> Option<(ProcessId, ProcessId, StepDepth)> {
        self.start();
        let Reverse(queued) = self.queue.pop()?;
        self.now = queued.deliver_at;
        let Envelope {
            from,
            to,
            depth,
            payload,
        } = queued.env;
        self.stats.record_delivery(depth);
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::Deliver {
                from,
                to,
                depth,
                at: self.now,
                payload: format!("{payload:?}"),
            });
        }
        let n = self.actors.len();
        if let Some(rec) = self.actors[to.index()].recorder_mut() {
            // Stamp the recipient's clock so protocol events recorded inside
            // the handler carry the delivery's virtual time and causal depth.
            rec.set_clock(self.now.as_units(), depth.get());
            rec.record(dex_obs::EventKind::Deliver {
                from: from.index() as u16,
            });
        }
        let buf = std::mem::take(&mut self.scratch);
        let mut ctx = Context::with_buffer(to, n, self.now, depth, &mut self.rng, buf);
        self.actors[to.index()].on_message(from, payload, &mut ctx);
        let mut outbox = ctx.into_outbox();
        self.dispatch(to, &mut outbox, depth.next());
        self.scratch = outbox;
        Some((from, to, depth))
    }

    /// Runs until the network drains or `max_events` deliveries have
    /// happened, whichever comes first.
    pub fn run(&mut self, max_events: u64) -> RunOutcome {
        let mut delivered = 0;
        while delivered < max_events {
            if self.step().is_none() {
                return RunOutcome {
                    delivered,
                    quiescent: true,
                    ended_at: self.now,
                };
            }
            delivered += 1;
        }
        RunOutcome {
            delivered,
            quiescent: self.queue.is_empty(),
            ended_at: self.now,
        }
    }

    /// Runs until `stop(actors)` returns `true`, the network drains, or
    /// `max_events` deliveries have happened. Returns the outcome; check
    /// `stop` again afterwards to distinguish success from exhaustion.
    pub fn run_until<F>(&mut self, max_events: u64, mut stop: F) -> RunOutcome
    where
        F: FnMut(&[A]) -> bool,
    {
        self.start();
        let mut delivered = 0;
        while delivered < max_events && !stop(&self.actors) {
            if self.step().is_none() {
                return RunOutcome {
                    delivered,
                    quiescent: true,
                    ended_at: self.now,
                };
            }
            delivered += 1;
        }
        RunOutcome {
            delivered,
            quiescent: self.queue.is_empty(),
            ended_at: self.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every received message back `count` times, decrementing.
    struct Echo {
        received: Vec<(ProcessId, u32, StepDepth)>,
    }

    impl Actor for Echo {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.me() == ProcessId::new(0) {
                ctx.broadcast_others(2);
            }
        }

        fn on_message(&mut self, from: ProcessId, msg: u32, ctx: &mut Context<'_, u32>) {
            self.received.push((from, msg, ctx.depth()));
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    fn echo_sim(n: usize, seed: u64) -> Simulation<Echo> {
        Simulation::new(
            (0..n)
                .map(|_| Echo {
                    received: Vec::new(),
                })
                .collect(),
            seed,
            DelayModel::Uniform { min: 1, max: 10 },
        )
    }

    #[test]
    fn runs_to_quiescence() {
        let mut sim = echo_sim(3, 1);
        let out = sim.run(1_000);
        assert!(out.quiescent);
        // p0 broadcasts 2 to p1,p2; each replies 1; p0 replies 0 to each; done.
        // Total deliveries: 2 + 2 + 2 = 6.
        assert_eq!(out.delivered, 6);
        assert_eq!(sim.stats().delivered, 6);
    }

    #[test]
    fn causal_depth_increases_along_chains() {
        let mut sim = echo_sim(2, 3);
        sim.run(1_000);
        let p0 = sim.actor(ProcessId::new(0));
        let p1 = sim.actor(ProcessId::new(1));
        // p1 got the initial 2 at depth 1 and the follow-up 0 at depth 3.
        assert_eq!(p1.received[0].2, StepDepth::new(1));
        assert_eq!(p1.received[1].2, StepDepth::new(3));
        // p0 got the reply 1 at depth 2.
        assert_eq!(p0.received[0].2, StepDepth::new(2));
        // Deepest message actually sent is the final 0-reply at depth 3.
        assert_eq!(sim.stats().max_depth, StepDepth::new(3));
    }

    #[test]
    fn event_cap_stops_runaway() {
        /// Two actors ping forever.
        struct Forever;
        impl Actor for Forever {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.broadcast_others(());
            }
            fn on_message(&mut self, from: ProcessId, _: (), ctx: &mut Context<'_, ()>) {
                ctx.send(from, ());
            }
        }
        let mut sim = Simulation::new(vec![Forever, Forever], 0, DelayModel::Constant(1));
        let out = sim.run(100);
        assert_eq!(out.delivered, 100);
        assert!(!out.quiescent);
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        let render = |seed: u64| {
            let mut sim = echo_sim(4, seed);
            sim.enable_trace();
            sim.run(10_000);
            sim.trace().unwrap().render()
        };
        assert_eq!(render(77), render(77));
        assert_ne!(render(77), render(78));
    }

    #[test]
    fn run_until_stops_at_predicate() {
        let mut sim = echo_sim(3, 5);
        let out = sim.run_until(1_000, |actors| {
            actors.iter().map(|a| a.received.len()).sum::<usize>() >= 2
        });
        assert!(out.delivered <= 6);
        let total: usize = sim.actors().iter().map(|a| a.received.len()).sum();
        assert!(total >= 2);
    }

    #[test]
    fn virtual_time_is_monotone() {
        let mut sim = echo_sim(3, 9);
        sim.start();
        let mut last = Time::ZERO;
        while sim.step().is_some() {
            assert!(sim.now() >= last);
            last = sim.now();
        }
    }

    #[test]
    fn self_messages_are_delivered() {
        struct SelfSend {
            got: bool,
        }
        impl Actor for SelfSend {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                let me = ctx.me();
                ctx.send(me, ());
            }
            fn on_message(&mut self, from: ProcessId, _: (), ctx: &mut Context<'_, ()>) {
                assert_eq!(from, ctx.me());
                self.got = true;
            }
        }
        let mut sim = Simulation::new(vec![SelfSend { got: false }], 0, DelayModel::Constant(1));
        sim.run(10);
        assert!(sim.actor(ProcessId::new(0)).got);
    }
}
