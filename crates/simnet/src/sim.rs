//! The discrete-event simulation engine.

use crate::actor::{Actor, Context};
use crate::delay::DelayModel;
use crate::slab::PayloadSlab;
use crate::stats::NetStats;
use crate::time::Time;
use crate::trace::{Trace, TraceDetail, TraceEvent};
use dex_types::{Dest, ProcessId, StepDepth};
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Compact heap entry: ordering fields plus a key into the payload slab.
///
/// `seq` is a monotone counter breaking `deliver_at` ties deterministically.
/// The entry is `Copy` and payload-free, so `BinaryHeap` comparisons and
/// sifts never touch (or move) message payloads — a multicast's payload is
/// stored once in the slab and shared by all its deliveries.
#[derive(Clone, Copy, Debug)]
struct QueueKey {
    deliver_at: Time,
    seq: u64,
    slot: u32,
    to: ProcessId,
}

impl PartialEq for QueueKey {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for QueueKey {}
impl PartialOrd for QueueKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.deliver_at
            .cmp(&other.deliver_at)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Result of running a simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunOutcome {
    /// Number of messages delivered during this run call.
    pub delivered: u64,
    /// `true` when the network drained completely; `false` when the event
    /// cap was hit first (e.g. a livelocked protocol).
    pub quiescent: bool,
    /// Virtual time at the end of the run.
    pub ended_at: Time,
}

/// A deterministic discrete-event simulation of `n` actors exchanging
/// messages over reliable asynchronous links.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Simulation<A: Actor> {
    actors: Vec<A>,
    queue: BinaryHeap<Reverse<QueueKey>>,
    /// In-flight payload storage; a `Dest::All` multicast holds one slot
    /// shared (refcounted) by all `n` deliveries.
    slab: PayloadSlab<A::Msg>,
    now: Time,
    seq: u64,
    rng: StdRng,
    delay: DelayModel,
    stats: NetStats,
    trace: Option<Trace>,
    started: bool,
    /// Recycled outbox buffer handed to each delivery's [`Context`], so the
    /// per-message hot path allocates nothing in the steady state.
    scratch: Vec<(Dest, A::Msg)>,
}

impl<A: Actor> Simulation<A> {
    /// Creates a simulation over the given actors (actor `i` is process
    /// `p_i`), a seed for all randomness (delays and actor RNG), and a delay
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if `actors` is empty.
    pub fn new(actors: Vec<A>, seed: u64, delay: DelayModel) -> Self {
        assert!(!actors.is_empty(), "need at least one actor");
        Simulation {
            actors,
            queue: BinaryHeap::new(),
            slab: PayloadSlab::new(),
            now: Time::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            delay,
            stats: NetStats::default(),
            trace: None,
            started: false,
            scratch: Vec::new(),
        }
    }

    /// Enables trace recording **with payload rendering** — one string
    /// allocation per network event. Equivalent to
    /// [`enable_trace_detail`](Self::enable_trace_detail) with
    /// [`TraceDetail::Payloads`].
    pub fn enable_trace(&mut self) {
        self.enable_trace_detail(TraceDetail::Payloads);
    }

    /// Enables trace recording at an explicit detail level.
    /// [`TraceDetail::Events`] records endpoints/depth/timing only and
    /// allocates no strings.
    pub fn enable_trace_detail(&mut self, detail: TraceDetail) {
        self.trace = Some(Trace::with_detail(detail));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.actors.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Network statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Borrows an actor's state (e.g. to read its decision after the run).
    pub fn actor(&self, id: ProcessId) -> &A {
        &self.actors[id.index()]
    }

    /// Borrows all actors.
    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Mutably borrows an actor (for test setups that need to tweak state
    /// between steps).
    pub fn actor_mut(&mut self, id: ProcessId) -> &mut A {
        &mut self.actors[id.index()]
    }

    /// Enqueues one delivery of the payload in `slot`, sampling its link
    /// delay. For a `Dest::All` multicast this is called for `to = 0..n` in
    /// ascending order — exactly the order the old eager per-recipient
    /// expansion produced — so the RNG stream, `seq` numbering and thus the
    /// whole virtual-time schedule are unchanged by the slab fast path.
    fn schedule(&mut self, from: ProcessId, to: ProcessId, depth: StepDepth, slot: u32) {
        let delay = self.delay.sample(&mut self.rng, from, to);
        let deliver_at = self.now + delay;
        self.stats.record_send(depth);
        if let Some(rec) = self.actors[from.index()].recorder_mut() {
            rec.record_at(
                self.now.as_units(),
                depth.get(),
                dex_obs::EventKind::Send {
                    to: to.index() as u16,
                },
            );
        }
        if let Some(trace) = &mut self.trace {
            let payload = match trace.detail() {
                TraceDetail::Payloads => format!("{:?}", self.slab.payload(slot)),
                TraceDetail::Events => String::new(),
            };
            trace.push(TraceEvent::Send {
                from,
                to,
                depth,
                at: self.now,
                payload,
            });
        }
        self.seq += 1;
        self.queue.push(Reverse(QueueKey {
            deliver_at,
            seq: self.seq,
            slot,
            to,
        }));
    }

    fn dispatch(&mut self, from: ProcessId, outbox: &mut Vec<(Dest, A::Msg)>, depth: StepDepth) {
        let n = self.actors.len();
        for (dest, payload) in outbox.drain(..) {
            match dest {
                Dest::To(to) => {
                    let slot = self.slab.insert(payload, from, depth, 1);
                    self.schedule(from, to, depth, slot);
                }
                Dest::All => {
                    // One shared payload, n pending deliveries, zero clones.
                    self.stats.multicasts += 1;
                    let slot = self.slab.insert(payload, from, depth, n as u32);
                    for i in 0..n {
                        self.schedule(from, ProcessId::new(i), depth, slot);
                    }
                }
            }
        }
    }

    /// Runs `on_start` on every actor (idempotent; also called implicitly by
    /// [`run`](Self::run) / [`step`](Self::step)).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let n = self.actors.len();
        for i in 0..n {
            let me = ProcessId::new(i);
            let buf = std::mem::take(&mut self.scratch);
            let mut ctx =
                Context::with_buffer(me, n, self.now, StepDepth::ZERO, &mut self.rng, buf);
            self.actors[i].on_start(&mut ctx);
            self.stats.payload_clones += ctx.cloned();
            let mut outbox = ctx.into_outbox();
            self.dispatch(me, &mut outbox, StepDepth::ONE);
            self.scratch = outbox;
        }
    }

    /// Delivers the next queued message, advancing virtual time. Returns the
    /// `(from, to, depth)` of the delivered message, or `None` when the
    /// network is quiescent.
    pub fn step(&mut self) -> Option<(ProcessId, ProcessId, StepDepth)> {
        self.start();
        let Reverse(key) = self.queue.pop()?;
        self.now = key.deliver_at;
        let to = key.to;
        let (from, depth) = self.slab.meta(key.slot);
        self.stats.record_delivery(depth);
        if let Some(trace) = &mut self.trace {
            let payload = match trace.detail() {
                TraceDetail::Payloads => format!("{:?}", self.slab.payload(key.slot)),
                TraceDetail::Events => String::new(),
            };
            trace.push(TraceEvent::Deliver {
                from,
                to,
                depth,
                at: self.now,
                payload,
            });
        }
        let n = self.actors.len();
        if let Some(rec) = self.actors[to.index()].recorder_mut() {
            // Stamp the recipient's clock so protocol events recorded inside
            // the handler carry the delivery's virtual time and causal depth.
            rec.set_clock(self.now.as_units(), depth.get());
            rec.record(dex_obs::EventKind::Deliver {
                from: from.index() as u16,
            });
        }
        let buf = std::mem::take(&mut self.scratch);
        let mut ctx = Context::with_buffer(to, n, self.now, depth, &mut self.rng, buf);
        self.actors[to.index()].on_message(from, self.slab.payload(key.slot), &mut ctx);
        self.stats.payload_clones += ctx.cloned();
        let mut outbox = ctx.into_outbox();
        self.slab.release(key.slot);
        self.dispatch(to, &mut outbox, depth.next());
        self.scratch = outbox;
        Some((from, to, depth))
    }

    /// Runs until the network drains or `max_events` deliveries have
    /// happened, whichever comes first.
    pub fn run(&mut self, max_events: u64) -> RunOutcome {
        let mut delivered = 0;
        while delivered < max_events {
            if self.step().is_none() {
                return RunOutcome {
                    delivered,
                    quiescent: true,
                    ended_at: self.now,
                };
            }
            delivered += 1;
        }
        RunOutcome {
            delivered,
            quiescent: self.queue.is_empty(),
            ended_at: self.now,
        }
    }

    /// Runs until `stop(actors)` returns `true`, the network drains, or
    /// `max_events` deliveries have happened. Returns the outcome; check
    /// `stop` again afterwards to distinguish success from exhaustion.
    pub fn run_until<F>(&mut self, max_events: u64, mut stop: F) -> RunOutcome
    where
        F: FnMut(&[A]) -> bool,
    {
        self.start();
        let mut delivered = 0;
        while delivered < max_events && !stop(&self.actors) {
            if self.step().is_none() {
                return RunOutcome {
                    delivered,
                    quiescent: true,
                    ended_at: self.now,
                };
            }
            delivered += 1;
        }
        RunOutcome {
            delivered,
            quiescent: self.queue.is_empty(),
            ended_at: self.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every received message back `count` times, decrementing.
    struct Echo {
        received: Vec<(ProcessId, u32, StepDepth)>,
    }

    impl Actor for Echo {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.me() == ProcessId::new(0) {
                ctx.broadcast_others(2);
            }
        }

        fn on_message(&mut self, from: ProcessId, msg: &u32, ctx: &mut Context<'_, u32>) {
            self.received.push((from, *msg, ctx.depth()));
            if *msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    fn echo_sim(n: usize, seed: u64) -> Simulation<Echo> {
        Simulation::new(
            (0..n)
                .map(|_| Echo {
                    received: Vec::new(),
                })
                .collect(),
            seed,
            DelayModel::Uniform { min: 1, max: 10 },
        )
    }

    #[test]
    fn runs_to_quiescence() {
        let mut sim = echo_sim(3, 1);
        let out = sim.run(1_000);
        assert!(out.quiescent);
        // p0 broadcasts 2 to p1,p2; each replies 1; p0 replies 0 to each; done.
        // Total deliveries: 2 + 2 + 2 = 6.
        assert_eq!(out.delivered, 6);
        assert_eq!(sim.stats().delivered, 6);
    }

    #[test]
    fn causal_depth_increases_along_chains() {
        let mut sim = echo_sim(2, 3);
        sim.run(1_000);
        let p0 = sim.actor(ProcessId::new(0));
        let p1 = sim.actor(ProcessId::new(1));
        // p1 got the initial 2 at depth 1 and the follow-up 0 at depth 3.
        assert_eq!(p1.received[0].2, StepDepth::new(1));
        assert_eq!(p1.received[1].2, StepDepth::new(3));
        // p0 got the reply 1 at depth 2.
        assert_eq!(p0.received[0].2, StepDepth::new(2));
        // Deepest message actually sent is the final 0-reply at depth 3.
        assert_eq!(sim.stats().max_depth, StepDepth::new(3));
    }

    #[test]
    fn event_cap_stops_runaway() {
        /// Two actors ping forever.
        struct Forever;
        impl Actor for Forever {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.broadcast_others(());
            }
            fn on_message(&mut self, from: ProcessId, _: &(), ctx: &mut Context<'_, ()>) {
                ctx.send(from, ());
            }
        }
        let mut sim = Simulation::new(vec![Forever, Forever], 0, DelayModel::Constant(1));
        let out = sim.run(100);
        assert_eq!(out.delivered, 100);
        assert!(!out.quiescent);
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        let render = |seed: u64| {
            let mut sim = echo_sim(4, seed);
            sim.enable_trace();
            sim.run(10_000);
            sim.trace().unwrap().render()
        };
        assert_eq!(render(77), render(77));
        assert_ne!(render(77), render(78));
    }

    #[test]
    fn events_only_trace_matches_payload_trace_shape() {
        let run = |detail: TraceDetail| {
            let mut sim = echo_sim(4, 21);
            sim.enable_trace_detail(detail);
            sim.run(10_000);
            sim.trace().unwrap().clone()
        };
        let full = run(TraceDetail::Payloads);
        let lean = run(TraceDetail::Events);
        assert_eq!(full.len(), lean.len());
        for (f, l) in full.events().iter().zip(lean.events()) {
            match (f, l) {
                (
                    TraceEvent::Send {
                        from: f1,
                        to: t1,
                        at: a1,
                        payload: p1,
                        ..
                    },
                    TraceEvent::Send {
                        from: f2,
                        to: t2,
                        at: a2,
                        payload: p2,
                        ..
                    },
                )
                | (
                    TraceEvent::Deliver {
                        from: f1,
                        to: t1,
                        at: a1,
                        payload: p1,
                        ..
                    },
                    TraceEvent::Deliver {
                        from: f2,
                        to: t2,
                        at: a2,
                        payload: p2,
                        ..
                    },
                ) => {
                    assert_eq!((f1, t1, a1), (f2, t2, a2));
                    assert!(!p1.is_empty() && p2.is_empty());
                }
                _ => panic!("event kinds diverged"),
            }
        }
    }

    #[test]
    fn run_until_stops_at_predicate() {
        let mut sim = echo_sim(3, 5);
        let out = sim.run_until(1_000, |actors| {
            actors.iter().map(|a| a.received.len()).sum::<usize>() >= 2
        });
        assert!(out.delivered <= 6);
        let total: usize = sim.actors().iter().map(|a| a.received.len()).sum();
        assert!(total >= 2);
    }

    #[test]
    fn virtual_time_is_monotone() {
        let mut sim = echo_sim(3, 9);
        sim.start();
        let mut last = Time::ZERO;
        while sim.step().is_some() {
            assert!(sim.now() >= last);
            last = sim.now();
        }
    }

    #[test]
    fn self_messages_are_delivered() {
        struct SelfSend {
            got: bool,
        }
        impl Actor for SelfSend {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                let me = ctx.me();
                ctx.send(me, ());
            }
            fn on_message(&mut self, from: ProcessId, _: &(), ctx: &mut Context<'_, ()>) {
                assert_eq!(from, ctx.me());
                self.got = true;
            }
        }
        let mut sim = Simulation::new(vec![SelfSend { got: false }], 0, DelayModel::Constant(1));
        sim.run(10);
        assert!(sim.actor(ProcessId::new(0)).got);
    }

    /// A payload whose clones are observable, for the zero-clone assertions.
    #[derive(Debug)]
    struct CountedPayload(std::sync::Arc<std::sync::atomic::AtomicU64>);
    impl Clone for CountedPayload {
        fn clone(&self) -> Self {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            CountedPayload(self.0.clone())
        }
    }

    struct Gossip {
        counter: std::sync::Arc<std::sync::atomic::AtomicU64>,
        rounds: u32,
        got: u32,
    }
    impl Actor for Gossip {
        type Msg = (u32, CountedPayload);
        fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
            if ctx.me() == ProcessId::new(0) {
                ctx.broadcast((self.rounds, CountedPayload(self.counter.clone())));
            }
        }
        fn on_message(
            &mut self,
            _from: ProcessId,
            msg: &Self::Msg,
            ctx: &mut Context<'_, Self::Msg>,
        ) {
            self.got += 1;
            if msg.0 > 0 {
                ctx.broadcast((msg.0 - 1, CountedPayload(self.counter.clone())));
            }
        }
    }

    #[test]
    fn multicast_payloads_are_never_cloned_by_the_network() {
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let n = 5;
        let mut sim = Simulation::new(
            (0..n)
                .map(|_| Gossip {
                    counter: counter.clone(),
                    rounds: 2,
                    got: 0,
                })
                .collect(),
            3,
            DelayModel::Uniform { min: 1, max: 4 },
        );
        let out = sim.run(1_000_000);
        assert!(out.quiescent);
        // Every broadcast reached all n processes…
        assert_eq!(sim.stats().delivered, sim.stats().multicasts * n as u64);
        assert!(sim.stats().multicasts > 1);
        // …and neither the actors nor the network ever cloned a payload.
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 0);
        assert_eq!(sim.stats().payload_clones, 0);
    }

    #[test]
    fn slab_slots_are_recycled_after_delivery() {
        let mut sim = echo_sim(4, 13);
        let out = sim.run(1_000_000);
        assert!(out.quiescent);
        assert_eq!(sim.slab.live(), 0, "all slots released");
        assert!(
            sim.slab.capacity() < sim.stats().sent as usize,
            "slots were reused across the run (capacity {} vs {} sends)",
            sim.slab.capacity(),
            sim.stats().sent
        );
    }
}
