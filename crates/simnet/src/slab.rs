//! Shared-payload slab for in-flight messages.
//!
//! A multicast stores its payload **once**, together with the sender and
//! causal depth it was dispatched with, plus a refcount of pending
//! deliveries. The event queue then carries only a compact `Copy` key
//! referencing the slot, so `BinaryHeap` comparisons and sifts never move a
//! payload. Slots are pushed onto a free list when their last delivery
//! completes and are reused by later inserts, so a steady-state simulation
//! stops allocating once the slab has grown to the peak in-flight count.

use dex_types::{ProcessId, StepDepth};

#[derive(Debug)]
struct Slot<M> {
    /// `None` only while the slot sits on the free list.
    payload: Option<M>,
    from: ProcessId,
    depth: StepDepth,
    /// Pending deliveries; the slot is freed when this reaches zero.
    remaining: u32,
}

/// The slab: slot storage plus a LIFO free list.
#[derive(Debug)]
pub(crate) struct PayloadSlab<M> {
    slots: Vec<Slot<M>>,
    free: Vec<u32>,
}

impl<M> PayloadSlab<M> {
    pub(crate) fn new() -> Self {
        PayloadSlab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores one payload shared by `remaining` pending deliveries and
    /// returns its slot key.
    pub(crate) fn insert(
        &mut self,
        payload: M,
        from: ProcessId,
        depth: StepDepth,
        remaining: u32,
    ) -> u32 {
        debug_assert!(remaining > 0, "a slot must have at least one delivery");
        match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.payload.is_none());
                slot.payload = Some(payload);
                slot.from = from;
                slot.depth = depth;
                slot.remaining = remaining;
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("more than u32::MAX in flight");
                self.slots.push(Slot {
                    payload: Some(payload),
                    from,
                    depth,
                    remaining,
                });
                idx
            }
        }
    }

    /// The shared payload of a live slot.
    pub(crate) fn payload(&self, slot: u32) -> &M {
        self.slots[slot as usize]
            .payload
            .as_ref()
            .expect("slot is live")
    }

    /// The `(from, depth)` the slot was dispatched with.
    pub(crate) fn meta(&self, slot: u32) -> (ProcessId, StepDepth) {
        let s = &self.slots[slot as usize];
        (s.from, s.depth)
    }

    /// Adds one pending delivery to a live slot (a chaos duplication shares
    /// the original payload instead of cloning it).
    pub(crate) fn retain(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.remaining > 0, "cannot retain a freed slot");
        s.remaining += 1;
    }

    /// Records one completed delivery; drops the payload and recycles the
    /// slot when it was the last one.
    pub(crate) fn release(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.remaining > 0);
        s.remaining -= 1;
        if s.remaining == 0 {
            s.payload = None;
            self.free.push(slot);
        }
    }

    /// Number of live (payload-holding) slots.
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever allocated (live + recycled).
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn multicast_slot_survives_until_last_release() {
        let mut slab: PayloadSlab<String> = PayloadSlab::new();
        let s = slab.insert("hello".into(), p(2), StepDepth::new(3), 3);
        assert_eq!(slab.payload(s), "hello");
        assert_eq!(slab.meta(s), (p(2), StepDepth::new(3)));
        slab.release(s);
        slab.release(s);
        assert_eq!(slab.live(), 1, "still one pending delivery");
        assert_eq!(slab.payload(s), "hello");
        slab.release(s);
        assert_eq!(slab.live(), 0);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut slab: PayloadSlab<u64> = PayloadSlab::new();
        let a = slab.insert(1, p(0), StepDepth::ONE, 1);
        slab.release(a);
        let b = slab.insert(2, p(1), StepDepth::ONE, 2);
        assert_eq!(a, b, "the free list recycles slots LIFO");
        assert_eq!(slab.capacity(), 1, "no second allocation");
        assert_eq!(*slab.payload(b), 2);
        slab.release(b);
        slab.release(b);
        assert_eq!(slab.live(), 0);
    }

    #[test]
    fn retain_adds_a_pending_delivery() {
        let mut slab: PayloadSlab<u64> = PayloadSlab::new();
        let s = slab.insert(7, p(0), StepDepth::ONE, 1);
        slab.retain(s); // a duplication: two deliveries now share the slot
        slab.release(s);
        assert_eq!(slab.live(), 1, "duplicate still pending");
        assert_eq!(*slab.payload(s), 7);
        slab.release(s);
        assert_eq!(slab.live(), 0);
    }

    #[test]
    fn interleaved_slots_stay_independent() {
        let mut slab: PayloadSlab<u64> = PayloadSlab::new();
        let a = slab.insert(10, p(0), StepDepth::ONE, 2);
        let b = slab.insert(20, p(1), StepDepth::new(2), 1);
        slab.release(a);
        assert_eq!(*slab.payload(a), 10);
        assert_eq!(*slab.payload(b), 20);
        slab.release(b);
        slab.release(a);
        assert_eq!(slab.live(), 0);
        assert_eq!(slab.capacity(), 2);
    }
}
