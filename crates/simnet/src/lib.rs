//! A deterministic discrete-event simulator for asynchronous message-passing
//! systems.
//!
//! The DEX paper's system model (§2.1) is a fully asynchronous network of
//! `n` processes connected by reliable links: no message is ever lost,
//! duplicated or corrupted, but delivery delays are arbitrary and there is no
//! bound on relative process speeds. This crate realises that model as a
//! seeded virtual-time simulation:
//!
//! * **Actors** ([`Actor`]) are deterministic state machines reacting to
//!   message deliveries. Byzantine processes are simply actors running a
//!   different (adversarial) state machine — including per-recipient
//!   equivocation, since [`Context::send`] addresses one recipient at a time.
//! * **Delays** are sampled per message from a configurable [`DelayModel`];
//!   with a fixed seed the whole execution is reproducible bit-for-bit.
//! * **Causal step accounting**: every message carries a
//!   [`StepDepth`](dex_types::StepDepth) — one more than the deepest message
//!   its sender had consumed. This is the paper's communication-step measure:
//!   a decision triggered at depth 1 is a *one-step* decision, the Identical
//!   Broadcast costs two depths per IDB step, and so on.
//!
//! # Examples
//!
//! A two-process ping-pong, run to quiescence:
//!
//! ```
//! use dex_simnet::{Actor, Context, DelayModel, Simulation};
//! use dex_types::ProcessId;
//!
//! struct Ping { got: usize }
//!
//! impl Actor for Ping {
//!     type Msg = u32;
//!     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
//!         if ctx.me() == ProcessId::new(0) {
//!             ctx.send(ProcessId::new(1), 7);
//!         }
//!     }
//!     fn on_message(&mut self, _from: ProcessId, msg: &u32, ctx: &mut Context<'_, u32>) {
//!         self.got += 1;
//!         if *msg > 0 && ctx.me() == ProcessId::new(1) {
//!             ctx.send(ProcessId::new(0), msg - 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::builder(vec![Ping { got: 0 }, Ping { got: 0 }])
//!     .seed(42)
//!     .delay(DelayModel::Constant(10))
//!     .build();
//! let outcome = sim.run(10_000);
//! assert!(outcome.quiescent);
//! assert_eq!(sim.actor(ProcessId::new(1)).got, 1);
//! ```
//!
//! Hostile schedules — timed partitions, lossy links, crash/recovery
//! windows — are injected with a [`FaultSchedule`] via
//! [`SimulationBuilder::faults`]; see the [`faults`](crate::faults) module
//! docs for semantics and the determinism argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod builder;
mod delay;
pub mod faults;
mod sim;
mod slab;
mod stats;
mod time;
mod trace;

pub use actor::{Actor, Context, MsgClass, Recoverable};
pub use builder::SimulationBuilder;
pub use delay::DelayModel;
pub use dex_types::Dest;
pub use faults::{CrashMode, CrashWindow, FaultSchedule, LinkFault, Partition};
pub use sim::{RunOutcome, Simulation, CHAOS_SALT};
pub use stats::NetStats;
pub use time::Time;
pub use trace::{Trace, TraceDetail, TraceEvent};
