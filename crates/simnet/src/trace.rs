//! Optional execution tracing.

use crate::time::Time;
use dex_types::{ProcessId, StepDepth};

/// How much a recorded trace captures per network event.
///
/// Rendering a payload costs a `format!("{payload:?}")` allocation per send
/// *and* per delivery; the [`Events`](TraceDetail::Events) level skips it,
/// so traces used only for event counting / schedule inspection allocate no
/// strings on the hot path.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceDetail {
    /// Record endpoints, depth and timing only; `payload` fields stay empty.
    #[default]
    Events,
    /// Additionally record the `Debug` rendering of every payload.
    Payloads,
}

/// One network-level event in a traced run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A message entered the network.
    Send {
        /// Sender.
        from: ProcessId,
        /// Recipient.
        to: ProcessId,
        /// Causal step depth carried by the message.
        depth: StepDepth,
        /// Virtual send time.
        at: Time,
        /// `Debug` rendering of the payload.
        payload: String,
    },
    /// A message was delivered to its recipient.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Recipient.
        to: ProcessId,
        /// Causal step depth carried by the message.
        depth: StepDepth,
        /// Virtual delivery time.
        at: Time,
        /// `Debug` rendering of the payload.
        payload: String,
    },
}

impl TraceEvent {
    /// Renders the event as a single log line.
    pub fn render(&self) -> String {
        match self {
            TraceEvent::Send {
                from,
                to,
                depth,
                at,
                payload,
            } => format!("{at} SEND    {from} -> {to} [d{}] {payload}", depth.get()),
            TraceEvent::Deliver {
                from,
                to,
                depth,
                at,
                payload,
            } => format!("{at} DELIVER {from} -> {to} [d{}] {payload}", depth.get()),
        }
    }
}

/// A recorded execution trace (only populated when tracing is enabled on
/// the simulation; payload strings are only rendered at
/// [`TraceDetail::Payloads`]).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    detail: TraceDetail,
}

impl Trace {
    /// Creates an empty trace recording at the given detail level.
    pub(crate) fn with_detail(detail: TraceDetail) -> Self {
        Trace {
            events: Vec::new(),
            detail,
        }
    }

    /// The detail level this trace records at.
    pub fn detail(&self) -> TraceDetail {
        self.detail
    }

    /// Appends an event.
    pub(crate) fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All recorded events in chronological order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the whole trace, one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_endpoints_and_depth() {
        let ev = TraceEvent::Send {
            from: ProcessId::new(0),
            to: ProcessId::new(2),
            depth: StepDepth::new(1),
            at: Time::new(5),
            payload: "Proposal(7)".into(),
        };
        let line = ev.render();
        assert!(line.contains("p0 -> p2"));
        assert!(line.contains("[d1]"));
        assert!(line.contains("Proposal(7)"));
    }

    #[test]
    fn trace_accumulates_in_order() {
        let mut tr = Trace::default();
        assert!(tr.is_empty());
        tr.push(TraceEvent::Deliver {
            from: ProcessId::new(1),
            to: ProcessId::new(0),
            depth: StepDepth::new(2),
            at: Time::new(9),
            payload: "x".into(),
        });
        assert_eq!(tr.len(), 1);
        assert!(tr.render().contains("DELIVER"));
    }
}
