//! Network-level statistics.

use crate::actor::{Actor, MsgClass};
use dex_types::{Dest, StepDepth};

/// Counters maintained by the simulator across one run.
///
/// # Examples
///
/// ```
/// use dex_simnet::NetStats;
/// let stats = NetStats::default();
/// assert_eq!(stats.sent, 0);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NetStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered to actors.
    pub delivered: u64,
    /// `Dest::All` multicasts dispatched. Each one stores its payload once
    /// in the simulator's slab, shared by all `n` deliveries.
    pub multicasts: u64,
    /// Payload clones performed by the network layer. `Dest::All` traffic
    /// contributes **zero**; only the per-recipient
    /// `Context::broadcast_others` expansion clones (`n − 1` per call).
    pub payload_clones: u64,
    /// Messages destroyed by the fault schedule: probabilistic link drops
    /// plus deliveries to permanently crashed processes.
    pub dropped: u64,
    /// Extra deliveries injected by probabilistic link duplication (each
    /// shares the original payload — no clone).
    pub duplicated: u64,
    /// Deliveries deferred past a partition heal.
    pub held_partition: u64,
    /// Deliveries deferred past a crash recovery.
    pub held_crash: u64,
    /// Payload bytes carried by the network: each scheduled delivery adds
    /// the size of the payload it carries (see [`Actor::msg_bytes`]), so a
    /// `Dest::All` multicast to `n` processes counts `n × size` — the slab
    /// stores the payload once, but the wire still carries every copy.
    /// Self-addressed timers are local and contribute nothing.
    ///
    /// [`Actor::msg_bytes`]: crate::Actor::msg_bytes
    pub bytes_on_wire: u64,
    /// Sent messages classified [`MsgClass::Init`] — broadcast openers
    /// (IDB/RB inits, proposals, votes). The four `sent_*` class counters
    /// partition [`sent`](Self::sent) exactly.
    pub sent_init: u64,
    /// Sent messages classified [`MsgClass::Echo`] — individually-sent
    /// echoes (the n² flood the aggregation layer exists to compress).
    pub sent_echo: u64,
    /// Sent messages classified [`MsgClass::Batch`] — aggregated echo
    /// batches on the wire (each counts once here however many entries it
    /// carries; the entries land in [`echoes_batched`](Self::echoes_batched)).
    pub sent_batch: u64,
    /// Sent messages in no other class (UC traffic, catch-up, timers).
    pub sent_other: u64,
    /// Echo entries carried inside batch messages: the echoes that *would*
    /// have been individual `sent_echo` messages without aggregation.
    /// Counted once per multicast (not per recipient), mirroring how
    /// [`multicasts`](Self::multicasts) counts.
    pub echoes_batched: u64,
    /// The deepest causal step observed on any message.
    pub max_depth: StepDepth,
    /// Delivered-message count per causal depth (index = depth − 1).
    pub per_depth: Vec<u64>,
}

impl NetStats {
    pub(crate) fn record_send(&mut self, depth: StepDepth, class: MsgClass) {
        self.sent += 1;
        match class {
            MsgClass::Init => self.sent_init += 1,
            MsgClass::Echo => self.sent_echo += 1,
            MsgClass::Batch(_) => self.sent_batch += 1,
            MsgClass::Other => self.sent_other += 1,
        }
        if depth > self.max_depth {
            self.max_depth = depth;
        }
    }

    pub(crate) fn record_delivery(&mut self, depth: StepDepth) {
        self.delivered += 1;
        let idx = depth.get().saturating_sub(1) as usize;
        if self.per_depth.len() <= idx {
            self.per_depth.resize(idx + 1, 0);
        }
        self.per_depth[idx] += 1;
    }

    /// Counts one logical send against the ledger, the way the simulator's
    /// own dispatcher does: class and size are computed **once** per
    /// logical send, batch entries land in
    /// [`echoes_batched`](Self::echoes_batched) once (not per recipient),
    /// and a `Dest::All` multicast counts one multicast plus `n` recipient
    /// copies in [`sent`](Self::sent) and
    /// [`bytes_on_wire`](Self::bytes_on_wire).
    ///
    /// `fanout_clones` is what the runtime's transport actually clones per
    /// multicast: `0` for the simulator's shared slab and for `dex-netd`
    /// (one encoded frame shared across sockets), `n − 1` for the threaded
    /// runtime's per-channel payload expansion. External runtimes
    /// (`dex-threadnet`, `dex-netd`) call this so their wire ledgers stay
    /// comparable with the simulator's line for line.
    pub fn note_send<A: Actor>(
        &mut self,
        n: usize,
        dest: &Dest,
        payload: &A::Msg,
        depth: StepDepth,
        fanout_clones: u64,
    ) {
        let class = A::msg_class(payload);
        let bytes = A::msg_bytes(payload) as u64;
        if let MsgClass::Batch(entries) = class {
            self.echoes_batched += u64::from(entries);
        }
        let copies = match dest {
            Dest::To(_) => 1,
            Dest::All => {
                self.multicasts += 1;
                self.payload_clones += fanout_clones;
                n as u64
            }
        };
        self.sent += copies;
        self.bytes_on_wire += bytes * copies;
        match class {
            MsgClass::Init => self.sent_init += copies,
            MsgClass::Echo => self.sent_echo += copies,
            MsgClass::Batch(_) => self.sent_batch += copies,
            MsgClass::Other => self.sent_other += copies,
        }
        if depth > self.max_depth {
            self.max_depth = depth;
        }
    }

    /// Counts one armed timer: the simulator records each timer as a send
    /// of its payload's class with **no** wire bytes (self-delivery stays
    /// local). External runtimes call this when an actor arms a timer.
    pub fn note_timer<A: Actor>(&mut self, payload: &A::Msg, depth: StepDepth) {
        self.record_send(depth, A::msg_class(payload));
    }

    /// Counts one handled delivery (network envelope or fired timer) at
    /// causal depth `depth`. External runtimes call this where the
    /// simulator would call its internal delivery hook.
    pub fn note_delivery(&mut self, depth: StepDepth) {
        self.record_delivery(depth);
    }

    /// Delivered messages at a given causal depth.
    pub fn delivered_at_depth(&self, depth: StepDepth) -> u64 {
        let idx = depth.get().saturating_sub(1) as usize;
        self.per_depth.get(idx).copied().unwrap_or(0)
    }

    /// Folds another run's counters into this one — batch runners use this
    /// to aggregate wire statistics across runs (sums everywhere except
    /// `max_depth`, which takes the maximum).
    pub fn merge(&mut self, other: &NetStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.multicasts += other.multicasts;
        self.payload_clones += other.payload_clones;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.held_partition += other.held_partition;
        self.held_crash += other.held_crash;
        self.bytes_on_wire += other.bytes_on_wire;
        self.sent_init += other.sent_init;
        self.sent_echo += other.sent_echo;
        self.sent_batch += other.sent_batch;
        self.sent_other += other.sent_other;
        self.echoes_batched += other.echoes_batched;
        if other.max_depth > self.max_depth {
            self.max_depth = other.max_depth;
        }
        if self.per_depth.len() < other.per_depth.len() {
            self.per_depth.resize(other.per_depth.len(), 0);
        }
        for (mine, theirs) in self.per_depth.iter_mut().zip(&other.per_depth) {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NetStats::default();
        s.record_send(StepDepth::new(1), MsgClass::Init);
        s.record_send(StepDepth::new(3), MsgClass::Other);
        s.record_delivery(StepDepth::new(1));
        s.record_delivery(StepDepth::new(1));
        s.record_delivery(StepDepth::new(3));
        assert_eq!(s.sent, 2);
        assert_eq!(s.delivered, 3);
        assert_eq!(s.max_depth, StepDepth::new(3));
        assert_eq!(s.delivered_at_depth(StepDepth::new(1)), 2);
        assert_eq!(s.delivered_at_depth(StepDepth::new(2)), 0);
        assert_eq!(s.delivered_at_depth(StepDepth::new(3)), 1);
    }

    #[test]
    fn merge_sums_counters_and_maxes_depth() {
        let mut a = NetStats::default();
        a.record_send(StepDepth::new(1), MsgClass::Init);
        a.record_delivery(StepDepth::new(1));
        let mut b = NetStats::default();
        b.record_send(StepDepth::new(3), MsgClass::Batch(4));
        b.echoes_batched = 4;
        b.record_delivery(StepDepth::new(3));
        a.merge(&b);
        assert_eq!(a.sent, 2);
        assert_eq!(a.sent_init, 1);
        assert_eq!(a.sent_batch, 1);
        assert_eq!(a.echoes_batched, 4);
        assert_eq!(a.max_depth, StepDepth::new(3));
        assert_eq!(a.delivered_at_depth(StepDepth::new(1)), 1);
        assert_eq!(a.delivered_at_depth(StepDepth::new(3)), 1);
    }

    #[test]
    fn class_counters_partition_sent() {
        let mut s = NetStats::default();
        s.record_send(StepDepth::new(1), MsgClass::Init);
        s.record_send(StepDepth::new(2), MsgClass::Echo);
        s.record_send(StepDepth::new(2), MsgClass::Echo);
        s.record_send(StepDepth::new(2), MsgClass::Batch(5));
        s.record_send(StepDepth::new(3), MsgClass::Other);
        assert_eq!(s.sent_init, 1);
        assert_eq!(s.sent_echo, 2);
        assert_eq!(s.sent_batch, 1);
        assert_eq!(s.sent_other, 1);
        assert_eq!(
            s.sent_init + s.sent_echo + s.sent_batch + s.sent_other,
            s.sent,
            "class counters must partition sent exactly"
        );
    }
}
