//! Network-level statistics.

use dex_types::StepDepth;

/// Counters maintained by the simulator across one run.
///
/// # Examples
///
/// ```
/// use dex_simnet::NetStats;
/// let stats = NetStats::default();
/// assert_eq!(stats.sent, 0);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NetStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered to actors.
    pub delivered: u64,
    /// `Dest::All` multicasts dispatched. Each one stores its payload once
    /// in the simulator's slab, shared by all `n` deliveries.
    pub multicasts: u64,
    /// Payload clones performed by the network layer. `Dest::All` traffic
    /// contributes **zero**; only the per-recipient
    /// `Context::broadcast_others` expansion clones (`n − 1` per call).
    pub payload_clones: u64,
    /// Messages destroyed by the fault schedule: probabilistic link drops
    /// plus deliveries to permanently crashed processes.
    pub dropped: u64,
    /// Extra deliveries injected by probabilistic link duplication (each
    /// shares the original payload — no clone).
    pub duplicated: u64,
    /// Deliveries deferred past a partition heal.
    pub held_partition: u64,
    /// Deliveries deferred past a crash recovery.
    pub held_crash: u64,
    /// Payload bytes carried by the network: each scheduled delivery adds
    /// the size of the payload it carries (see [`Actor::msg_bytes`]), so a
    /// `Dest::All` multicast to `n` processes counts `n × size` — the slab
    /// stores the payload once, but the wire still carries every copy.
    /// Self-addressed timers are local and contribute nothing.
    ///
    /// [`Actor::msg_bytes`]: crate::Actor::msg_bytes
    pub bytes_on_wire: u64,
    /// The deepest causal step observed on any message.
    pub max_depth: StepDepth,
    /// Delivered-message count per causal depth (index = depth − 1).
    pub per_depth: Vec<u64>,
}

impl NetStats {
    pub(crate) fn record_send(&mut self, depth: StepDepth) {
        self.sent += 1;
        if depth > self.max_depth {
            self.max_depth = depth;
        }
    }

    pub(crate) fn record_delivery(&mut self, depth: StepDepth) {
        self.delivered += 1;
        let idx = depth.get().saturating_sub(1) as usize;
        if self.per_depth.len() <= idx {
            self.per_depth.resize(idx + 1, 0);
        }
        self.per_depth[idx] += 1;
    }

    /// Delivered messages at a given causal depth.
    pub fn delivered_at_depth(&self, depth: StepDepth) -> u64 {
        let idx = depth.get().saturating_sub(1) as usize;
        self.per_depth.get(idx).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NetStats::default();
        s.record_send(StepDepth::new(1));
        s.record_send(StepDepth::new(3));
        s.record_delivery(StepDepth::new(1));
        s.record_delivery(StepDepth::new(1));
        s.record_delivery(StepDepth::new(3));
        assert_eq!(s.sent, 2);
        assert_eq!(s.delivered, 3);
        assert_eq!(s.max_depth, StepDepth::new(3));
        assert_eq!(s.delivered_at_depth(StepDepth::new(1)), 2);
        assert_eq!(s.delivered_at_depth(StepDepth::new(2)), 0);
        assert_eq!(s.delivered_at_depth(StepDepth::new(3)), 1);
    }
}
