//! Integration: the underlying consensus implementations running over the
//! discrete-event simulator, with and without faults.

use dex_simnet::{Actor, Context, DelayModel, Simulation};
use dex_types::{ProcessId, StepDepth, SystemConfig, Value};
use dex_underlying::{CoinMode, OracleConsensus, Outbox, ReducedMvc, UnderlyingConsensus};

/// Wraps any `UnderlyingConsensus` as a simnet actor.
struct UcActor<V: Value, U: UnderlyingConsensus<V>> {
    uc: U,
    proposal: V,
    decided_at: Option<StepDepth>,
}

impl<V: Value, U: UnderlyingConsensus<V>> UcActor<V, U> {
    fn new(uc: U, proposal: V) -> Self {
        UcActor {
            uc,
            proposal,
            decided_at: None,
        }
    }

    fn decision(&self) -> Option<&V> {
        self.uc.decision()
    }

    fn flush(out: &mut Outbox<U::Msg>, ctx: &mut Context<'_, U::Msg>) {
        for (dest, m) in out.drain() {
            ctx.send_dest(dest, m);
        }
    }
}

impl<V: Value, U: UnderlyingConsensus<V> + 'static> Actor for UcActor<V, U> {
    type Msg = U::Msg;

    fn on_start(&mut self, ctx: &mut Context<'_, U::Msg>) {
        let mut out = Outbox::new();
        let v = self.proposal.clone();
        self.uc.propose(v, ctx.rng(), &mut out);
        Self::flush(&mut out, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: &U::Msg, ctx: &mut Context<'_, U::Msg>) {
        let mut out = Outbox::new();
        self.uc.on_message(from, msg, ctx.rng(), &mut out);
        Self::flush(&mut out, ctx);
        if self.uc.decision().is_some() && self.decided_at.is_none() {
            self.decided_at = Some(ctx.depth());
        }
    }
}

/// Either a live consensus participant or a crashed process.
enum Node<V: Value, U: UnderlyingConsensus<V>> {
    Live(UcActor<V, U>),
    Crashed,
}

impl<V: Value, U: UnderlyingConsensus<V> + 'static> Actor for Node<V, U> {
    type Msg = U::Msg;

    fn on_start(&mut self, ctx: &mut Context<'_, U::Msg>) {
        if let Node::Live(a) = self {
            a.on_start(ctx);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: &U::Msg, ctx: &mut Context<'_, U::Msg>) {
        if let Node::Live(a) = self {
            a.on_message(from, msg, ctx);
        }
    }
}

fn oracle_nodes(
    cfg: SystemConfig,
    proposals: &[u64],
    crashed: &[usize],
) -> Vec<Node<u64, OracleConsensus<u64>>> {
    // The coordinator must be correct: pick the first non-crashed process.
    let coordinator = (0..cfg.n())
        .find(|i| !crashed.contains(i))
        .map(ProcessId::new)
        .expect("at least one correct process");
    proposals
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if crashed.contains(&i) {
                Node::Crashed
            } else {
                Node::Live(UcActor::new(
                    OracleConsensus::new(cfg, ProcessId::new(i), coordinator),
                    *v,
                ))
            }
        })
        .collect()
}

fn mvc_nodes(
    cfg: SystemConfig,
    proposals: &[u64],
    crashed: &[usize],
    coin: CoinMode,
) -> Vec<Node<u64, ReducedMvc<u64>>> {
    proposals
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if crashed.contains(&i) {
                Node::Crashed
            } else {
                Node::Live(UcActor::new(
                    ReducedMvc::new(cfg, ProcessId::new(i), coin, u64::MAX),
                    *v,
                ))
            }
        })
        .collect()
}

fn decisions<V: Value, U: UnderlyingConsensus<V> + 'static>(
    sim: &Simulation<Node<V, U>>,
) -> Vec<Option<V>>
where
    U::Msg: Clone,
{
    sim.actors()
        .iter()
        .map(|n| match n {
            Node::Live(a) => a.decision().cloned(),
            Node::Crashed => None,
        })
        .collect()
}

#[test]
fn oracle_decides_in_two_steps_all_correct() {
    let cfg = SystemConfig::new(4, 1).unwrap();
    for seed in 0..20 {
        let nodes = oracle_nodes(cfg, &[7, 7, 9, 7], &[]);
        let mut sim = Simulation::builder(nodes)
            .seed(seed)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .build();
        assert!(sim.run(100_000).quiescent);
        let ds = decisions(&sim);
        // Agreement + termination.
        assert!(ds.iter().all(|d| d.is_some()), "seed {seed}");
        assert!(ds.iter().all(|d| d == &ds[0]), "seed {seed}");
        // Plurality of any n−t subset of (7,7,9,7) is 7.
        assert_eq!(ds[0], Some(7));
        // Two-step decision depth.
        for node in sim.actors() {
            if let Node::Live(a) = node {
                assert_eq!(a.decided_at, Some(StepDepth::new(2)), "seed {seed}");
            }
        }
    }
}

#[test]
fn oracle_tolerates_crashed_minority() {
    let cfg = SystemConfig::new(4, 1).unwrap();
    for seed in 0..10 {
        let nodes = oracle_nodes(cfg, &[5, 5, 5, 5], &[3]);
        let mut sim = Simulation::builder(nodes)
            .seed(seed)
            .delay(DelayModel::default())
            .build();
        assert!(sim.run(100_000).quiescent);
        let ds = decisions(&sim);
        for (i, d) in ds.iter().enumerate() {
            if i != 3 {
                assert_eq!(*d, Some(5), "seed {seed}");
            }
        }
    }
}

#[test]
fn oracle_crashed_coordinator_candidate_is_skipped() {
    // Process 0 is crashed; the helper must route around it.
    let cfg = SystemConfig::new(4, 1).unwrap();
    let nodes = oracle_nodes(cfg, &[5, 6, 6, 6], &[0]);
    let mut sim = Simulation::builder(nodes)
        .seed(1)
        .delay(DelayModel::default())
        .build();
    assert!(sim.run(100_000).quiescent);
    let ds = decisions(&sim);
    assert_eq!(ds[1], Some(6));
    assert_eq!(ds[1], ds[2]);
    assert_eq!(ds[2], ds[3]);
}

#[test]
fn mvc_unanimity_all_correct() {
    let cfg = SystemConfig::new(6, 1).unwrap();
    for seed in 0..10 {
        let nodes = mvc_nodes(cfg, &[7; 6], &[], CoinMode::Common { seed: 99 });
        let mut sim = Simulation::builder(nodes)
            .seed(seed)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .build();
        let out = sim.run(3_000_000);
        assert!(out.quiescent, "seed {seed}: must terminate");
        let ds = decisions(&sim);
        assert!(ds.iter().all(|d| *d == Some(7)), "seed {seed}: {ds:?}");
    }
}

#[test]
fn mvc_agreement_on_split_proposals() {
    let cfg = SystemConfig::new(6, 1).unwrap();
    for seed in 0..10 {
        let nodes = mvc_nodes(cfg, &[1, 2, 3, 4, 5, 6], &[], CoinMode::Common { seed: 5 });
        let mut sim = Simulation::builder(nodes)
            .seed(seed)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .build();
        assert!(sim.run(3_000_000).quiescent, "seed {seed}");
        let ds = decisions(&sim);
        assert!(ds.iter().all(|d| d.is_some()), "seed {seed}");
        assert!(ds.iter().all(|d| d == &ds[0]), "seed {seed}: {ds:?}");
    }
}

#[test]
fn mvc_tolerates_silent_fault() {
    let cfg = SystemConfig::new(6, 1).unwrap();
    for seed in 0..10 {
        let nodes = mvc_nodes(cfg, &[4; 6], &[2], CoinMode::Common { seed: 3 });
        let mut sim = Simulation::builder(nodes)
            .seed(seed)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .build();
        assert!(sim.run(3_000_000).quiescent, "seed {seed}");
        let ds = decisions(&sim);
        for (i, d) in ds.iter().enumerate() {
            if i != 2 {
                assert_eq!(*d, Some(4), "seed {seed}");
            }
        }
    }
}

#[test]
fn mvc_local_coin_still_terminates() {
    // Local coins: exponential expected rounds, but n is tiny and the split
    // needs only a couple of lucky flips.
    let cfg = SystemConfig::new(6, 1).unwrap();
    let nodes = mvc_nodes(cfg, &[1, 1, 1, 2, 2, 2], &[], CoinMode::Local);
    let mut sim = Simulation::builder(nodes)
        .seed(42)
        .delay(DelayModel::Uniform { min: 1, max: 5 })
        .build();
    assert!(sim.run(20_000_000).quiescent);
    let ds = decisions(&sim);
    assert!(ds.iter().all(|d| d.is_some()));
    assert!(ds.iter().all(|d| d == &ds[0]));
}

#[test]
fn mvc_decisions_are_deterministic_per_seed() {
    let cfg = SystemConfig::new(6, 1).unwrap();
    let run = |seed| {
        let nodes = mvc_nodes(cfg, &[1, 2, 1, 2, 1, 2], &[], CoinMode::Common { seed: 8 });
        let mut sim = Simulation::builder(nodes)
            .seed(seed)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .build();
        assert!(sim.run(3_000_000).quiescent);
        decisions(&sim)
    };
    assert_eq!(run(3), run(3));
}
