//! Round-level behaviour of the randomized binary consensus: unanimity
//! decides in round 1, forced splits converge within a few common-coin
//! rounds, and the wind-down protocol actually drains the network.

use dex_simnet::{Actor, Context, DelayModel, Simulation};
use dex_types::{ProcessId, SystemConfig};
use dex_underlying::{BinaryMsg, BrachaBinary, CoinMode, Outbox, UnderlyingConsensus};

struct BinNode {
    bin: BrachaBinary,
    proposal: bool,
}

impl BinNode {
    fn flush(out: &mut Outbox<BinaryMsg>, ctx: &mut Context<'_, BinaryMsg>) {
        for (dest, m) in out.drain() {
            ctx.send_dest(dest, m);
        }
    }
}

impl Actor for BinNode {
    type Msg = BinaryMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, BinaryMsg>) {
        let mut out = Outbox::new();
        self.bin.propose(self.proposal, ctx.rng(), &mut out);
        Self::flush(&mut out, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: &BinaryMsg, ctx: &mut Context<'_, BinaryMsg>) {
        let mut out = Outbox::new();
        self.bin.on_message(from, msg, ctx.rng(), &mut out);
        Self::flush(&mut out, ctx);
    }
}

fn run(proposals: &[bool], coin: CoinMode, seed: u64) -> Simulation<BinNode> {
    let cfg = SystemConfig::new(proposals.len(), 1).unwrap();
    let actors: Vec<BinNode> = proposals
        .iter()
        .enumerate()
        .map(|(i, p)| BinNode {
            bin: BrachaBinary::new(cfg, ProcessId::new(i), coin),
            proposal: *p,
        })
        .collect();
    let mut sim = Simulation::builder(actors)
        .seed(seed)
        .delay(DelayModel::Uniform { min: 1, max: 10 })
        .build();
    let out = sim.run(30_000_000);
    assert!(out.quiescent, "binary consensus must wind down");
    sim
}

#[test]
fn unanimous_true_decides_in_round_one() {
    for seed in 0..5 {
        let sim = run(&[true; 6], CoinMode::Common { seed: 1 }, seed);
        for node in sim.actors() {
            assert_eq!(node.bin.decision(), Some(&true), "seed {seed}");
            // Decided in round 1, wound down by round 2.
            assert!(
                node.bin.round() <= 2,
                "seed {seed}: round {}",
                node.bin.round()
            );
            assert!(node.bin.halted());
        }
    }
}

#[test]
fn unanimous_false_decides_false() {
    let sim = run(&[false; 6], CoinMode::Common { seed: 2 }, 9);
    for node in sim.actors() {
        assert_eq!(node.bin.decision(), Some(&false));
    }
}

#[test]
fn forced_split_converges_with_common_coin() {
    for seed in 0..5 {
        let sim = run(
            &[true, false, true, false, true, false],
            CoinMode::Common { seed: 7 },
            seed,
        );
        let first = *sim.actors()[0].bin.decision().expect("decided");
        for node in sim.actors() {
            assert_eq!(node.bin.decision(), Some(&first), "seed {seed}");
            assert!(
                node.bin.round() <= 8,
                "seed {seed}: common coin should converge quickly, took {} rounds",
                node.bin.round()
            );
        }
    }
}

#[test]
fn round_cap_halts_without_decision_instead_of_livelocking() {
    // An adversarially tiny cap: the machine must halt (undecided is
    // acceptable; spinning forever is not).
    let cfg = SystemConfig::new(6, 1).unwrap();
    let actors: Vec<BinNode> = (0..6)
        .map(|i| {
            let mut bin = BrachaBinary::new(cfg, ProcessId::new(i), CoinMode::Local);
            bin.set_max_rounds(1);
            BinNode {
                bin,
                proposal: i % 2 == 0,
            }
        })
        .collect();
    let mut sim = Simulation::builder(actors)
        .seed(3)
        .delay(DelayModel::Constant(1))
        .build();
    let out = sim.run(5_000_000);
    assert!(out.quiescent);
    for node in sim.actors() {
        assert!(node.bin.halted());
    }
}

#[test]
fn silent_fault_does_not_block_rounds() {
    let cfg = SystemConfig::new(6, 1).unwrap();
    let mut actors: Vec<BinNode> = (0..5)
        .map(|i| BinNode {
            bin: BrachaBinary::new(cfg, ProcessId::new(i), CoinMode::Common { seed: 5 }),
            proposal: i % 2 == 0,
        })
        .collect();
    // p5 never proposes (crash before start).
    actors.push(BinNode {
        bin: BrachaBinary::new(cfg, ProcessId::new(5), CoinMode::Common { seed: 5 }),
        proposal: false,
    });
    struct Silent;
    impl Actor for Silent {
        type Msg = BinaryMsg;
        fn on_start(&mut self, _: &mut Context<'_, BinaryMsg>) {}
        fn on_message(&mut self, _: ProcessId, _: &BinaryMsg, _: &mut Context<'_, BinaryMsg>) {}
    }
    enum Node {
        Live(BinNode),
        Dead(Silent),
    }
    impl Actor for Node {
        type Msg = BinaryMsg;
        fn on_start(&mut self, ctx: &mut Context<'_, BinaryMsg>) {
            match self {
                Node::Live(n) => n.on_start(ctx),
                Node::Dead(s) => s.on_start(ctx),
            }
        }
        fn on_message(&mut self, f: ProcessId, m: &BinaryMsg, ctx: &mut Context<'_, BinaryMsg>) {
            match self {
                Node::Live(n) => n.on_message(f, m, ctx),
                Node::Dead(s) => s.on_message(f, m, ctx),
            }
        }
    }
    let mut nodes: Vec<Node> = actors.into_iter().take(5).map(Node::Live).collect();
    nodes.push(Node::Dead(Silent));
    let mut sim = Simulation::builder(nodes)
        .seed(11)
        .delay(DelayModel::Uniform { min: 1, max: 10 })
        .build();
    assert!(sim.run(30_000_000).quiescent);
    let mut decisions = Vec::new();
    for node in sim.actors() {
        if let Node::Live(n) = node {
            decisions.push(*n.bin.decision().expect("correct processes decide"));
        }
    }
    assert!(decisions.windows(2).all(|w| w[0] == w[1]), "{decisions:?}");
}
