//! The idealized coordinator-based underlying consensus.

use crate::outbox::Outbox;
use crate::traits::UnderlyingConsensus;
use dex_types::{ProcessId, SystemConfig, Value, View};
use rand::rngs::StdRng;

/// Wire messages of [`OracleConsensus`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OracleMsg<V> {
    /// A process forwards its proposal to the coordinator.
    Propose(V),
    /// The coordinator announces the decision.
    Decide(V),
}

/// An idealized two-step underlying consensus built around a designated
/// **correct** coordinator.
///
/// The paper treats the underlying consensus as a black box whose
/// termination relies on assumptions beyond pure asynchrony (§2.2). This
/// implementation models the *best-behaved* such box — the one the
/// literature's step-count comparisons assume: a stable correct leader (as
/// produced by an Ω failure detector in the Paxos/PBFT tradition) collects
/// `n − t` proposals, picks the most frequent one (largest on ties), and
/// announces it. Cost: exactly two point-to-point steps.
///
/// Properties (assuming the experiment designates a coordinator that is
/// actually correct, which the `dex-harness` fault planner guarantees):
///
/// * **Agreement** — a single announcement is broadcast; correct processes
///   only accept `Decide` from the coordinator (senders are authenticated).
/// * **Termination** — the coordinator always receives the `n − t` correct
///   proposals.
/// * **Unanimity** — if all correct processes propose `v`, then among any
///   `n − t` received proposals at least `n − 2t` are `v` while at most `t`
///   are anything else; `n − 2t > t` holds for `n > 3t`, so `v` wins the
///   plurality.
///
/// For a primitive with **no** trusted component, see [`crate::ReducedMvc`].
#[derive(Clone, Debug)]
pub struct OracleConsensus<V> {
    config: SystemConfig,
    me: ProcessId,
    coordinator: ProcessId,
    proposed: bool,
    announced: bool,
    proposals: View<V>,
    decision: Option<V>,
}

impl<V: Value> OracleConsensus<V> {
    /// Creates one process's endpoint. All processes must agree on the
    /// `coordinator`, and experiments must pick a correct one (the harness
    /// does).
    pub fn new(config: SystemConfig, me: ProcessId, coordinator: ProcessId) -> Self {
        OracleConsensus {
            config,
            me,
            coordinator,
            proposed: false,
            announced: false,
            proposals: View::bottom(config.n()),
            decision: None,
        }
    }

    /// The designated coordinator.
    pub fn coordinator(&self) -> ProcessId {
        self.coordinator
    }
}

impl<V: Value> UnderlyingConsensus<V> for OracleConsensus<V> {
    type Msg = OracleMsg<V>;

    fn name(&self) -> &'static str {
        "oracle"
    }

    fn propose(&mut self, value: V, _rng: &mut StdRng, out: &mut Outbox<Self::Msg>) {
        if self.proposed {
            return;
        }
        self.proposed = true;
        out.send(self.coordinator, OracleMsg::Propose(value));
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: &Self::Msg,
        _rng: &mut StdRng,
        out: &mut Outbox<Self::Msg>,
    ) {
        match msg {
            OracleMsg::Propose(v) => {
                if self.me != self.coordinator {
                    return; // not addressed to us; ignore strays
                }
                self.proposals.set(from, v.clone());
                if !self.announced && self.proposals.len_non_default() >= self.config.quorum() {
                    self.announced = true;
                    let winner = self
                        .proposals
                        .first()
                        .cloned()
                        .expect("quorum implies at least one entry");
                    out.broadcast(OracleMsg::Decide(winner));
                }
            }
            OracleMsg::Decide(v) => {
                if from != self.coordinator {
                    return; // forgery from a Byzantine process
                }
                if self.decision.is_none() {
                    self.decision = Some(v.clone());
                }
            }
        }
    }

    fn decision(&self) -> Option<&V> {
        self.decision.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outbox::Dest;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    fn cfg() -> SystemConfig {
        SystemConfig::new(4, 1).unwrap()
    }

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn propose_goes_to_coordinator_once() {
        let mut uc: OracleConsensus<u64> = OracleConsensus::new(cfg(), p(1), p(0));
        let mut out = Outbox::new();
        uc.propose(5, &mut rng(), &mut out);
        uc.propose(6, &mut rng(), &mut out); // ignored
        let msgs = out.drain();
        assert_eq!(msgs, vec![(Dest::To(p(0)), OracleMsg::Propose(5))]);
    }

    #[test]
    fn coordinator_announces_plurality_at_quorum() {
        let mut coord: OracleConsensus<u64> = OracleConsensus::new(cfg(), p(0), p(0));
        let mut out = Outbox::new();
        coord.on_message(p(1), &OracleMsg::Propose(7), &mut rng(), &mut out);
        coord.on_message(p(2), &OracleMsg::Propose(7), &mut rng(), &mut out);
        assert!(out.is_empty()); // quorum is 3
        coord.on_message(p(3), &OracleMsg::Propose(9), &mut rng(), &mut out);
        let msgs = out.drain();
        assert_eq!(msgs, vec![(Dest::All, OracleMsg::Decide(7))]);
    }

    #[test]
    fn late_proposals_do_not_reannounce() {
        let mut coord: OracleConsensus<u64> = OracleConsensus::new(cfg(), p(0), p(0));
        let mut out = Outbox::new();
        for i in 1..4 {
            coord.on_message(p(i), &OracleMsg::Propose(7), &mut rng(), &mut out);
        }
        out.drain();
        coord.on_message(p(0), &OracleMsg::Propose(7), &mut rng(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn decide_accepted_only_from_coordinator() {
        let mut uc: OracleConsensus<u64> = OracleConsensus::new(cfg(), p(1), p(0));
        let mut out = Outbox::new();
        uc.on_message(p(2), &OracleMsg::Decide(666), &mut rng(), &mut out);
        assert_eq!(uc.decision(), None);
        uc.on_message(p(0), &OracleMsg::Decide(7), &mut rng(), &mut out);
        assert_eq!(uc.decision(), Some(&7));
        // First decision sticks.
        uc.on_message(p(0), &OracleMsg::Decide(8), &mut rng(), &mut out);
        assert_eq!(uc.decision(), Some(&7));
    }

    #[test]
    fn non_coordinator_ignores_proposals() {
        let mut uc: OracleConsensus<u64> = OracleConsensus::new(cfg(), p(1), p(0));
        let mut out = Outbox::new();
        for i in 0..4 {
            uc.on_message(p(i), &OracleMsg::Propose(7), &mut rng(), &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(uc.decision(), None);
    }

    #[test]
    fn unanimity_with_adversarial_minority() {
        // All correct propose 7, a faulty process proposes 9: plurality is 7.
        let mut coord: OracleConsensus<u64> = OracleConsensus::new(cfg(), p(0), p(0));
        let mut out = Outbox::new();
        coord.on_message(p(3), &OracleMsg::Propose(9), &mut rng(), &mut out);
        coord.on_message(p(1), &OracleMsg::Propose(7), &mut rng(), &mut out);
        coord.on_message(p(2), &OracleMsg::Propose(7), &mut rng(), &mut out);
        let msgs = out.drain();
        assert_eq!(msgs, vec![(Dest::All, OracleMsg::Decide(7))]);
    }
}
