//! Randomized asynchronous binary Byzantine consensus.
//!
//! A Ben-Or-style protocol whose per-phase messages travel over the paper's
//! **Identical Broadcast**, so Byzantine processes cannot equivocate within
//! a phase. Three phases per round:
//!
//! 1. **Report** — IDB-broadcast the current estimate; on `n − t`
//!    deliveries adopt the majority value.
//! 2. **Propose** — IDB-broadcast the adopted value; a value seen more than
//!    `(n + t) / 2` times becomes *locked* (at most one value can ever be
//!    locked in a round, by quorum intersection over the equivocation-free
//!    per-sender values).
//! 3. **Candidate** — IDB-broadcast `(value, locked)`; on `n − t`
//!    deliveries: `2t + 1` locked copies ⇒ **decide**, `t + 1` locked copies
//!    ⇒ adopt, otherwise flip a coin.
//!
//! Resilience: `n > 5t` (the unanimity-preservation argument needs
//! `n − 2t > (n + t) / 2`). Termination holds with probability 1; with the
//! [`CoinMode::Common`] abstraction of a common-coin primitive the expected
//! number of rounds is O(1), with purely local coins it is exponential in
//! `n` (fine for the small systems in the experiments, and faithful to the
//! original Ben-Or construction).

use crate::outbox::Outbox;
use crate::traits::UnderlyingConsensus;
use dex_broadcast::{Action, IdbMessage, IdenticalBroadcast};
use dex_types::{ProcessId, SystemConfig};
use rand::rngs::StdRng;
use std::collections::HashMap;

/// Phase payloads (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PhasePayload {
    /// Phase 1: current estimate.
    Report(bool),
    /// Phase 2: majority-adopted value.
    Propose(bool),
    /// Phase 3: candidate value, flagged when locked by a phase-2 quorum.
    Candidate {
        /// The candidate value.
        value: bool,
        /// Whether a `> (n + t) / 2` phase-2 quorum backed it.
        locked: bool,
    },
}

/// Broadcast-instance key: `(origin, round, phase)`.
pub type BinKey = (ProcessId, u32, u8);

/// Wire message: an Identical Broadcast message carrying a phase payload.
pub type BinaryMsg = IdbMessage<BinKey, PhasePayload>;

/// Where coin flips come from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoinMode {
    /// Independent local coins (Ben-Or's original scheme): correct with
    /// probability-1 termination, exponential expected rounds.
    Local,
    /// A shared deterministic coin derived from the round number and this
    /// seed — the standard *common coin* abstraction; every correct process
    /// flips the same value, giving expected O(1) rounds. All processes must
    /// be configured with the same seed.
    Common {
        /// Shared seed of the common-coin oracle.
        seed: u64,
    },
}

impl CoinMode {
    fn flip(self, round: u32, rng: &mut StdRng) -> bool {
        match self {
            CoinMode::Local => rng.random_bool(0.5),
            CoinMode::Common { seed } => {
                // SplitMix64 finalizer over (seed, round).
                let mut z = seed ^ (u64::from(round)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            }
        }
    }
}

/// The randomized binary consensus state machine of one process.
///
/// Satisfies the underlying-consensus contract of §2.2 for `V = bool`:
/// agreement, unanimity, termination with probability 1. Used as the spine
/// of the multivalued [`crate::ReducedMvc`].
#[derive(Clone, Debug)]
pub struct BrachaBinary {
    config: SystemConfig,
    me: ProcessId,
    coin: CoinMode,
    idb: IdenticalBroadcast<BinKey, PhasePayload>,
    est: Option<bool>,
    round: u32,
    phase: u8,
    delivered: HashMap<(u32, u8), HashMap<ProcessId, PhasePayload>>,
    decision: Option<bool>,
    decide_round: Option<u32>,
    halted: bool,
    max_rounds: u32,
}

impl BrachaBinary {
    /// Default bound on rounds before the machine gives up (a safety net
    /// for simulations; with a common coin real executions finish in a few
    /// rounds).
    pub const DEFAULT_MAX_ROUNDS: u32 = 64;

    /// Creates one process's endpoint.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 5t`.
    pub fn new(config: SystemConfig, me: ProcessId, coin: CoinMode) -> Self {
        assert!(
            config.supports_one_step(),
            "randomized binary consensus (this construction) requires n > 5t, got {config}"
        );
        BrachaBinary {
            config,
            me,
            coin,
            idb: IdenticalBroadcast::new(config),
            est: None,
            round: 1,
            phase: 1,
            delivered: HashMap::new(),
            decision: None,
            decide_round: None,
            halted: false,
            max_rounds: Self::DEFAULT_MAX_ROUNDS,
        }
    }

    /// Overrides the round cap.
    pub fn set_max_rounds(&mut self, max_rounds: u32) {
        self.max_rounds = max_rounds;
    }

    /// The round this process is currently in (1-based).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Whether the machine stopped making progress (decided and wound down,
    /// or hit the round cap).
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn payload_matches_phase(phase: u8, payload: &PhasePayload) -> bool {
        matches!(
            (phase, payload),
            (1, PhasePayload::Report(_))
                | (2, PhasePayload::Propose(_))
                | (3, PhasePayload::Candidate { .. })
        )
    }

    fn idb_broadcast(&mut self, payload: PhasePayload, out: &mut Outbox<BinaryMsg>) {
        let key = (self.me, self.round, self.phase);
        out.broadcast(IdenticalBroadcast::id_send(key, payload));
    }

    fn start_phase(&mut self, out: &mut Outbox<BinaryMsg>) {
        let est = self.est.expect("started only after propose");
        let payload = match self.phase {
            1 => PhasePayload::Report(est),
            2 => PhasePayload::Propose(est),
            3 => {
                let lock = self.locked_value();
                PhasePayload::Candidate {
                    value: lock.unwrap_or(est),
                    locked: lock.is_some(),
                }
            }
            _ => unreachable!("phases are 1..=3"),
        };
        self.idb_broadcast(payload, out);
    }

    /// The phase-2 locked value, if any (`> (n + t) / 2` matching copies).
    fn locked_value(&self) -> Option<bool> {
        let quorum = (self.config.n() + self.config.t()) / 2 + 1;
        let phase2 = self.delivered.get(&(self.round, 2))?;
        for candidate in [false, true] {
            let count = phase2
                .values()
                .filter(|p| matches!(p, PhasePayload::Propose(v) if *v == candidate))
                .count();
            if count >= quorum {
                return Some(candidate);
            }
        }
        None
    }

    fn try_advance(&mut self, rng: &mut StdRng, out: &mut Outbox<BinaryMsg>) {
        loop {
            if self.halted || self.est.is_none() {
                return;
            }
            let have = self
                .delivered
                .get(&(self.round, self.phase))
                .map_or(0, HashMap::len);
            if have < self.config.quorum() {
                return;
            }
            match self.phase {
                1 => {
                    let phase1 = &self.delivered[&(self.round, 1)];
                    let trues = phase1
                        .values()
                        .filter(|p| matches!(p, PhasePayload::Report(true)))
                        .count();
                    let falses = phase1.len() - trues;
                    if trues != falses {
                        self.est = Some(trues > falses);
                    }
                    self.phase = 2;
                    self.start_phase(out);
                }
                2 => {
                    self.phase = 3;
                    self.start_phase(out);
                }
                3 => {
                    let phase3 = &self.delivered[&(self.round, 3)];
                    let locked_count = |v: bool| {
                        phase3
                            .values()
                            .filter(|p| {
                                matches!(p, PhasePayload::Candidate { value, locked: true } if *value == v)
                            })
                            .count()
                    };
                    let t = self.config.t();
                    // Thresholds written as in the protocol (2t + 1, t + 1).
                    #[allow(clippy::int_plus_one)]
                    let mut next_est = None;
                    for v in [false, true] {
                        let c = locked_count(v);
                        if c >= 2 * t + 1 {
                            if self.decision.is_none() {
                                self.decision = Some(v);
                                self.decide_round = Some(self.round);
                            }
                            next_est = Some(v);
                        } else if c >= t + 1 {
                            next_est = Some(v);
                        }
                    }
                    self.est = Some(match next_est {
                        Some(v) => v,
                        None => self.coin.flip(self.round, rng),
                    });
                    // Wind down: one extra round after deciding lets every
                    // other correct process reach its own decision.
                    let past_decide = self.decide_round.is_some_and(|dr| self.round >= dr + 1);
                    if past_decide || self.round >= self.max_rounds {
                        self.halted = true;
                        return;
                    }
                    self.round += 1;
                    self.phase = 1;
                    self.start_phase(out);
                }
                _ => unreachable!(),
            }
        }
    }
}

impl UnderlyingConsensus<bool> for BrachaBinary {
    type Msg = BinaryMsg;

    fn name(&self) -> &'static str {
        "bracha-binary"
    }

    fn propose(&mut self, value: bool, rng: &mut StdRng, out: &mut Outbox<BinaryMsg>) {
        if self.est.is_some() {
            return;
        }
        self.est = Some(value);
        self.start_phase(out);
        self.try_advance(rng, out);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: &BinaryMsg,
        rng: &mut StdRng,
        out: &mut Outbox<BinaryMsg>,
    ) {
        for action in self.idb.on_message(from, msg) {
            match action {
                Action::Broadcast(m) => out.broadcast(m),
                Action::Deliver { key, value } => {
                    let (origin, round, phase) = key;
                    if Self::payload_matches_phase(phase, &value) {
                        self.delivered
                            .entry((round, phase))
                            .or_default()
                            .insert(origin, value);
                    }
                }
            }
        }
        self.try_advance(rng, out);
    }

    fn decision(&self) -> Option<&bool> {
        self.decision.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "n > 5t")]
    fn rejects_insufficient_resilience() {
        let _ = BrachaBinary::new(
            SystemConfig::new(5, 1).unwrap(),
            ProcessId::new(0),
            CoinMode::Local,
        );
    }

    #[test]
    fn common_coin_is_common_and_varied() {
        let coin = CoinMode::Common { seed: 42 };
        let mut rng = StdRng::seed_from_u64(0);
        let seq: Vec<bool> = (1..64).map(|r| coin.flip(r, &mut rng)).collect();
        let seq2: Vec<bool> = (1..64).map(|r| coin.flip(r, &mut rng)).collect();
        assert_eq!(seq, seq2, "same round + seed => same flip");
        assert!(seq.iter().any(|b| *b));
        assert!(seq.iter().any(|b| !*b));
    }

    #[test]
    fn propose_broadcasts_round1_report() {
        let cfg = SystemConfig::new(6, 1).unwrap();
        let mut bin = BrachaBinary::new(cfg, ProcessId::new(0), CoinMode::Local);
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Outbox::new();
        bin.propose(true, &mut rng, &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        match &msgs[0].1 {
            IdbMessage::Init { key, value } => {
                assert_eq!(*key, (ProcessId::new(0), 1, 1));
                assert_eq!(*value, PhasePayload::Report(true));
            }
            other => panic!("expected Init, got {other:?}"),
        }
        // Second propose is a no-op.
        bin.propose(false, &mut rng, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn payload_phase_matching_filters_mismatches() {
        assert!(BrachaBinary::payload_matches_phase(
            1,
            &PhasePayload::Report(true)
        ));
        assert!(!BrachaBinary::payload_matches_phase(
            1,
            &PhasePayload::Propose(true)
        ));
        assert!(BrachaBinary::payload_matches_phase(
            3,
            &PhasePayload::Candidate {
                value: false,
                locked: true
            }
        ));
        assert!(!BrachaBinary::payload_matches_phase(
            2,
            &PhasePayload::Candidate {
                value: false,
                locked: false
            }
        ));
    }
}
