//! The `UnderlyingConsensus` abstraction (§2.2).

use crate::outbox::Outbox;
use dex_types::{ProcessId, Value};
use rand::rngs::StdRng;

/// The underlying consensus primitive assumed by Algorithm DEX (§2.2):
/// `UC_propose(v)` / `UC_decide(v)` with **agreement**, **termination** and
/// **unanimity**, but *no bound on running time*.
///
/// One instance lives inside each process. The embedding layer:
///
/// 1. calls [`propose`](UnderlyingConsensus::propose) exactly once,
/// 2. routes every received protocol message into
///    [`on_message`](UnderlyingConsensus::on_message),
/// 3. transmits whatever lands in the [`Outbox`], and
/// 4. polls [`decision`](UnderlyingConsensus::decision) (or checks it after
///    each `on_message`) for `UC_decide`.
///
/// The `rng` parameter is the process's deterministic randomness source —
/// randomized implementations ([`crate::BrachaBinary`]) draw their coins
/// from it; deterministic ones ignore it.
pub trait UnderlyingConsensus<V: Value>: Send {
    /// This implementation's wire message type.
    type Msg: Clone + core::fmt::Debug + Send + 'static;

    /// Short name for reports (e.g. `"oracle"`, `"mvc"`).
    fn name(&self) -> &'static str;

    /// `UC_propose(v)`. Must be called at most once; later calls are
    /// ignored.
    fn propose(&mut self, value: V, rng: &mut StdRng, out: &mut Outbox<Self::Msg>);

    /// Feeds one received message (with its authenticated sender) into the
    /// protocol. The message is borrowed — the network layer shares one
    /// payload among all recipients of a multicast — so implementations
    /// clone only what they store.
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: &Self::Msg,
        rng: &mut StdRng,
        out: &mut Outbox<Self::Msg>,
    );

    /// `UC_decide`: the decided value once the protocol has terminated
    /// locally.
    fn decision(&self) -> Option<&V>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleConsensus;
    use dex_types::SystemConfig;

    #[test]
    fn trait_is_usable_generically() {
        fn poke<V: Value, U: UnderlyingConsensus<V>>(u: &U) -> Option<&V> {
            u.decision()
        }
        let cfg = SystemConfig::new(4, 1).unwrap();
        let uc: OracleConsensus<u64> =
            OracleConsensus::new(cfg, ProcessId::new(0), ProcessId::new(0));
        assert_eq!(poke(&uc), None);
    }
}
