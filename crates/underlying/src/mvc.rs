//! Multivalued underlying consensus reduced to binary consensus.
//!
//! The reduction (in the style of Correia–Neves–Veríssimo):
//!
//! 1. Every process **reliable-broadcasts** its proposal (one RB instance
//!    per origin — Byzantine proposals are at least *consistent* across
//!    correct receivers, and RB totality ensures everyone eventually
//!    delivers the same proposal set).
//! 2. After `n − t` proposals are delivered: if some value `v` occurs at
//!    least `n − 2t` times, propose `1` to the binary consensus, else `0`.
//! 3. If the binary consensus decides `1`: wait until *some* value reaches
//!    `n − 2t` delivered copies and decide it — that value is **unique**
//!    because two values with `n − 2t` copies each would need
//!    `2(n − 2t) ≤ n`, i.e. `n ≤ 4t`, contradicting `n > 4t`. If the binary
//!    consensus decides `0`, decide the designated **fallback** value.
//!
//! This satisfies exactly the underlying-consensus contract of §2.2:
//!
//! * **Agreement** — binary agreement + uniqueness of the dominant value.
//! * **Termination** — if binary decides `1`, some correct process saw
//!   `n − 2t` copies (binary unanimity rules out a pure-Byzantine `1`), and
//!   RB totality propagates those copies to everyone.
//! * **Unanimity** — all-correct-propose-`v` forces every correct process
//!   to see ≥ `n − 2t` copies of `v`, hence a unanimous binary `1` and a
//!   `v` decision.
//!
//! Note the contract does **not** include "the decision was proposed by
//! someone" — and indeed the fallback value may be nobody's proposal. The
//! paper's formal definition (§2.2) requires only the three properties
//! above, which is what makes this reduction admissible as DEX's fallback
//! engine.

use crate::binary::{BinaryMsg, BrachaBinary, CoinMode};
use crate::outbox::Outbox;
use crate::traits::UnderlyingConsensus;
use dex_broadcast::{Action, RbMessage, ReliableBroadcast};
use dex_types::{ProcessId, SystemConfig, Value};
use rand::rngs::StdRng;
use std::collections::HashMap;

/// Wire messages: proposal dissemination or binary-consensus traffic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MvcMsg<V> {
    /// Reliable-broadcast traffic for proposals.
    Prop(RbMessage<ProcessId, V>),
    /// Binary-consensus traffic.
    Bin(BinaryMsg),
}

/// Multivalued underlying consensus for one process.
///
/// Requires `n > 5t` (inherited from [`BrachaBinary`]; the uniqueness
/// argument only needs `n > 4t`).
#[derive(Clone, Debug)]
pub struct ReducedMvc<V> {
    config: SystemConfig,
    me: ProcessId,
    rb: ReliableBroadcast<ProcessId, V>,
    bin: BrachaBinary,
    proposals: HashMap<ProcessId, V>,
    proposed: bool,
    bin_proposed: bool,
    fallback: V,
    decision: Option<V>,
}

impl<V: Value> ReducedMvc<V> {
    /// Creates one process's endpoint. All processes must use the same
    /// `fallback` value and, for [`CoinMode::Common`], the same seed.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 5t` (see [`BrachaBinary::new`]).
    pub fn new(config: SystemConfig, me: ProcessId, coin: CoinMode, fallback: V) -> Self {
        ReducedMvc {
            config,
            me,
            rb: ReliableBroadcast::new(config),
            bin: BrachaBinary::new(config, me, coin),
            proposals: HashMap::new(),
            proposed: false,
            bin_proposed: false,
            fallback,
            decision: None,
        }
    }

    /// The dominance threshold `n − 2t`.
    fn dominance(&self) -> usize {
        self.config.n() - 2 * self.config.t()
    }

    /// A value with at least `n − 2t` delivered copies, if any (unique for
    /// `n > 4t`).
    fn dominant_value(&self) -> Option<&V> {
        let mut counts: HashMap<&V, usize> = HashMap::new();
        for v in self.proposals.values() {
            *counts.entry(v).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .find(|(_, c)| *c >= self.dominance())
            .map(|(v, _)| v)
    }

    fn maybe_bin_propose(&mut self, rng: &mut StdRng, out: &mut Outbox<MvcMsg<V>>) {
        if self.bin_proposed || self.proposals.len() < self.config.quorum() {
            return;
        }
        self.bin_proposed = true;
        let bit = self.dominant_value().is_some();
        let mut bin_out = Outbox::new();
        self.bin.propose(bit, rng, &mut bin_out);
        bin_out.map_drain_into(out, MvcMsg::Bin);
    }

    fn try_finish(&mut self) {
        if self.decision.is_some() {
            return;
        }
        match self.bin.decision() {
            Some(true) => {
                if let Some(v) = self.dominant_value() {
                    self.decision = Some(v.clone());
                }
                // else: totality will deliver more proposals; try again later.
            }
            Some(false) => {
                self.decision = Some(self.fallback.clone());
            }
            None => {}
        }
    }
}

impl<V: Value> UnderlyingConsensus<V> for ReducedMvc<V> {
    type Msg = MvcMsg<V>;

    fn name(&self) -> &'static str {
        "mvc"
    }

    fn propose(&mut self, value: V, _rng: &mut StdRng, out: &mut Outbox<MvcMsg<V>>) {
        if self.proposed {
            return;
        }
        self.proposed = true;
        let init = ReliableBroadcast::rb_send(self.me, value);
        out.broadcast(MvcMsg::Prop(init));
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: &MvcMsg<V>,
        rng: &mut StdRng,
        out: &mut Outbox<MvcMsg<V>>,
    ) {
        match msg {
            MvcMsg::Prop(m) => {
                for action in self.rb.on_message(from, m) {
                    match action {
                        Action::Broadcast(m) => out.broadcast(MvcMsg::Prop(m)),
                        Action::Deliver { key, value } => {
                            self.proposals.insert(key, value);
                        }
                    }
                }
                self.maybe_bin_propose(rng, out);
                self.try_finish();
            }
            MvcMsg::Bin(m) => {
                let mut bin_out = Outbox::new();
                self.bin.on_message(from, m, rng, &mut bin_out);
                bin_out.map_drain_into(out, MvcMsg::Bin);
                self.try_finish();
            }
        }
    }

    fn decision(&self) -> Option<&V> {
        self.decision.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propose_reliable_broadcasts_once() {
        let cfg = SystemConfig::new(6, 1).unwrap();
        let mut mvc: ReducedMvc<u64> =
            ReducedMvc::new(cfg, ProcessId::new(2), CoinMode::Common { seed: 1 }, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Outbox::new();
        mvc.propose(5, &mut rng, &mut out);
        mvc.propose(6, &mut rng, &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        assert!(matches!(
            &msgs[0].1,
            MvcMsg::Prop(RbMessage::Init { key, value: 5 }) if *key == ProcessId::new(2)
        ));
    }

    #[test]
    fn dominance_threshold_is_n_minus_2t() {
        let cfg = SystemConfig::new(6, 1).unwrap();
        let mvc: ReducedMvc<u64> = ReducedMvc::new(cfg, ProcessId::new(0), CoinMode::Local, 0);
        assert_eq!(mvc.dominance(), 4);
    }
}
