//! Underlying consensus primitives.
//!
//! Algorithm DEX assumes "an underlying consensus primitive that ensures
//! agreement, termination and unanimity, but provides no guarantees about
//! its running time" (§2.2). The primitive is an *abstraction* of whatever
//! extra assumption (partial synchrony, failure detectors, randomization)
//! makes asynchronous Byzantine consensus solvable at all.
//!
//! This crate provides the [`UnderlyingConsensus`] trait plus two
//! implementations at opposite ends of the realism spectrum:
//!
//! * [`OracleConsensus`] — an idealized primitive built around a designated
//!   *correct* coordinator (a stand-in for, e.g., a stable leader elected by
//!   an Ω failure detector). It decides in exactly **two** point-to-point
//!   steps, which is the best case the literature's 3-vs-4-step comparison
//!   (paper §1.2 and §5) assumes for the fallback path.
//! * [`ReducedMvc`] over [`BrachaBinary`] — a real randomized asynchronous
//!   protocol with no oracle: proposals travel by Bracha reliable broadcast,
//!   a Ben-Or-style binary consensus (phases transported over Identical
//!   Broadcast to rule out equivocation, `n > 5t`) agrees on whether a
//!   dominant proposal exists, and the unique dominant value (uniqueness
//!   needs `n > 4t`) is adopted. It satisfies exactly the paper's three
//!   required properties — agreement, termination (with probability 1),
//!   unanimity — deciding a designated fallback value when proposals are
//!   hopelessly split, which the spec permits.
//!
//! Implementations are transport-agnostic state machines: outgoing messages
//! are pushed into an [`Outbox`] and the caller (a simulated actor, a
//! thread, a test) moves them.
//!
//! # Examples
//!
//! Driving the oracle by hand with three processes:
//!
//! ```
//! use dex_underlying::{OracleConsensus, Outbox, UnderlyingConsensus};
//! use dex_types::{ProcessId, SystemConfig};
//! use rand::SeedableRng;
//!
//! let cfg = SystemConfig::new(4, 1)?;
//! let coordinator = ProcessId::new(0);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//!
//! let mut uc: OracleConsensus<u64> = OracleConsensus::new(cfg, ProcessId::new(1), coordinator);
//! let mut out = Outbox::new();
//! uc.propose(9, &mut rng, &mut out);
//! assert_eq!(out.drain().len(), 1); // one Propose to the coordinator
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
// Quorum thresholds are written exactly as in the papers (t + 1, 2t + 1, …).
#![allow(clippy::int_plus_one)]
#![warn(missing_docs)]

mod binary;
mod mvc;
mod oracle;
mod outbox;
mod traits;

pub use binary::{BinKey, BinaryMsg, BrachaBinary, CoinMode, PhasePayload};
pub use mvc::{MvcMsg, ReducedMvc};
pub use oracle::{OracleConsensus, OracleMsg};
pub use outbox::{Dest, Outbox};
pub use traits::UnderlyingConsensus;
