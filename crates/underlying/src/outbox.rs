//! Outgoing-message buffer decoupling protocol logic from transport.

use dex_types::ProcessId;

pub use dex_types::Dest;

/// A buffer of outgoing `(destination, message)` pairs.
///
/// Protocol state machines push here; the embedding actor drains and maps
/// onto the actual transport (a `dex_simnet::Context` or a thread channel).
///
/// # Examples
///
/// ```
/// use dex_underlying::{Dest, Outbox};
/// use dex_types::ProcessId;
///
/// let mut out: Outbox<&'static str> = Outbox::new();
/// out.send(ProcessId::new(2), "hello");
/// out.broadcast("to all");
/// assert_eq!(out.drain().len(), 2);
/// assert!(out.drain().is_empty());
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Outbox<M> {
    msgs: Vec<(Dest, M)>,
}

impl<M> Outbox<M> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox { msgs: Vec::new() }
    }

    /// Queues a message to one process.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.msgs.push((Dest::To(to), msg));
    }

    /// Queues a message to every process (including the sender — protocol
    /// broadcasts in the paper always include the sender itself).
    pub fn broadcast(&mut self, msg: M) {
        self.msgs.push((Dest::All, msg));
    }

    /// Takes all queued messages, leaving the outbox empty.
    ///
    /// This hands over the backing buffer itself (the outbox restarts with
    /// no capacity). Hot paths that drain the same outbox repeatedly should
    /// prefer [`drain_iter`](Self::drain_iter), which keeps the allocation.
    pub fn drain(&mut self) -> Vec<(Dest, M)> {
        std::mem::take(&mut self.msgs)
    }

    /// Drains all queued messages in place, retaining the buffer's capacity
    /// for the next batch — the allocation-free counterpart of
    /// [`drain`](Self::drain).
    pub fn drain_iter(&mut self) -> std::vec::Drain<'_, (Dest, M)> {
        self.msgs.drain(..)
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Maps the message type, preserving destinations — used by wrappers
    /// that embed one protocol's messages inside another's envelope.
    pub fn map_into<N, F: FnMut(M) -> N>(self, mut f: F) -> Outbox<N> {
        Outbox {
            msgs: self.msgs.into_iter().map(|(d, m)| (d, f(m))).collect(),
        }
    }

    /// Drains this outbox into `dst`, mapping each message through `f` and
    /// preserving destinations. Both buffers keep their capacity, so a
    /// wrapper that forwards an inner protocol's messages every step
    /// allocates nothing in the steady state — the in-place counterpart of
    /// [`map_into`](Self::map_into).
    pub fn map_drain_into<N, F: FnMut(M) -> N>(&mut self, dst: &mut Outbox<N>, mut f: F) {
        dst.msgs.extend(self.msgs.drain(..).map(|(d, m)| (d, f(m))));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_broadcast_drain() {
        let mut out = Outbox::new();
        out.send(ProcessId::new(1), 10u8);
        out.broadcast(20u8);
        assert_eq!(out.len(), 2);
        let msgs = out.drain();
        assert_eq!(msgs[0], (Dest::To(ProcessId::new(1)), 10));
        assert_eq!(msgs[1], (Dest::All, 20));
        assert!(out.is_empty());
    }

    #[test]
    fn drain_iter_keeps_capacity() {
        let mut out = Outbox::new();
        for i in 0..64u8 {
            out.broadcast(i);
        }
        let drained: Vec<_> = out.drain_iter().collect();
        assert_eq!(drained.len(), 64);
        assert!(out.is_empty());
        assert!(out.msgs.capacity() >= 64, "buffer must be reusable");
        // A plain drain() surrenders the buffer.
        out.broadcast(1);
        let _ = out.drain();
        assert_eq!(out.msgs.capacity(), 0);
    }

    #[test]
    fn map_drain_into_reuses_both_buffers() {
        let mut src = Outbox::new();
        let mut dst: Outbox<u16> = Outbox::new();
        for round in 0..3u16 {
            for i in 0..32u8 {
                src.send(ProcessId::new(i as usize), i);
            }
            src.broadcast(99);
            src.map_drain_into(&mut dst, |m| u16::from(m) + round);
            assert!(src.is_empty());
            assert_eq!(dst.len(), 33);
            assert_eq!(dst.msgs[0], (Dest::To(ProcessId::new(0)), round));
            assert_eq!(dst.msgs[32], (Dest::All, 99 + round));
            let cap_before = src.msgs.capacity();
            dst.msgs.clear();
            assert!(cap_before >= 33, "source buffer must be reusable");
        }
    }

    #[test]
    fn map_into_preserves_destinations() {
        let mut out = Outbox::new();
        out.send(ProcessId::new(3), 5u8);
        out.broadcast(6u8);
        let mapped: Outbox<String> = out.map_into(|m| format!("v{m}"));
        let msgs = mapped.msgs;
        assert_eq!(msgs[0], (Dest::To(ProcessId::new(3)), "v5".to_string()));
        assert_eq!(msgs[1], (Dest::All, "v6".to_string()));
    }
}
