//! Property-based recovery tests: for arbitrary commit interleavings,
//! snapshot cadences and crash points, the durable state (snapshot + WAL)
//! always re-derives a log byte-identical to the one that was lost.

use dex_replication::{
    CommitOutcome, Durability, MemWal, ReplicatedLog, StateMachine, TotalOrder, Wal, WalRecord,
};
use proptest::prelude::*;

/// Slot-determined values keep arbitrary interleavings conflict-free:
/// every replica of a slot commits the same value, as agreement guarantees.
fn value_of(slot: u64) -> u64 {
    slot * 7 + 3
}

/// One step of the WAL's durable/volatile state machine.
#[derive(Clone, Debug)]
enum WalOp {
    Append(u64),
    Sync,
    Crash,
}

fn wal_op_strategy() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        (0u64..32).prop_map(WalOp::Append),
        (0u64..32).prop_map(WalOp::Append),
        (0u64..32).prop_map(WalOp::Append),
        Just(WalOp::Sync),
        Just(WalOp::Sync),
        Just(WalOp::Crash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Re-committing any already-committed slot with its agreed value is a
    /// `Duplicate` that changes nothing — the exact situation a WAL replay
    /// overlapping a catch-up creates.
    #[test]
    fn recommits_are_idempotent(
        slots in proptest::collection::vec(0usize..16, 1..40),
        recheck in proptest::collection::vec(0usize..16, 1..10),
    ) {
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new();
        for &slot in &slots {
            let outcome = log.commit(slot, value_of(slot as u64));
            prop_assert_ne!(outcome, CommitOutcome::Conflict);
        }
        let before = log.clone();
        for &slot in &recheck {
            if log.is_committed(slot) {
                let outcome = log.commit(slot, value_of(slot as u64));
                prop_assert_eq!(outcome, CommitOutcome::Duplicate);
            }
        }
        prop_assert_eq!(&log, &before, "duplicate commits must not mutate the log");
    }

    /// The committed prefix and the applied cursor only ever grow, and the
    /// cursor never overtakes the prefix — under any commit order.
    #[test]
    fn prefix_and_applied_cursor_are_monotone(
        slots in proptest::collection::vec(0usize..16, 1..60),
    ) {
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new();
        let mut last_prefix = 0;
        for &slot in &slots {
            let _ = log.commit(slot, value_of(slot as u64));
            while log.next_applicable().is_some() {
                log.mark_applied();
            }
            let prefix = log.committed_prefix();
            prop_assert!(prefix >= last_prefix, "prefix shrank {last_prefix} -> {prefix}");
            prop_assert!(log.applied() <= prefix);
            prop_assert_eq!(log.prefix().len(), prefix);
            last_prefix = prefix;
        }
    }

    /// The WAL's crash model, checked against a reference model: whatever
    /// was synced survives any crash pattern, whatever was not is gone.
    #[test]
    fn mem_wal_matches_the_durable_volatile_model(
        ops in proptest::collection::vec(wal_op_strategy(), 1..60),
    ) {
        let mut wal: MemWal<u64> = MemWal::new();
        let mut durable: Vec<WalRecord<u64>> = Vec::new();
        let mut buffered: Vec<WalRecord<u64>> = Vec::new();
        for op in &ops {
            match op {
                WalOp::Append(slot) => {
                    let record = WalRecord::Commit { slot: *slot, value: value_of(*slot) };
                    wal.append(record.clone());
                    buffered.push(record);
                }
                WalOp::Sync => {
                    wal.sync();
                    durable.append(&mut buffered);
                }
                WalOp::Crash => {
                    wal.crash();
                    buffered.clear();
                }
            }
            prop_assert_eq!(wal.replay(), durable.clone());
            prop_assert_eq!(wal.unsynced_len(), buffered.len());
        }
    }

    /// The tentpole round-trip: arbitrary commit interleaving, arbitrary
    /// snapshot cadence, crash at an arbitrary point — snapshot + WAL
    /// replay re-derives the exact committed prefix, applied cursor and
    /// machine digest the replica had persisted.
    #[test]
    fn snapshot_plus_wal_rederives_the_original_log(
        slots in proptest::collection::vec(0u64..16, 1..40),
        snapshot_every in 0usize..5,
        crash_after in 0usize..40,
    ) {
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new();
        let mut machine = TotalOrder::<u64>::default();
        let mut d: Durability<TotalOrder<u64>> = Durability::new(
            Box::new(MemWal::new()),
            snapshot_every,
        );

        let crash_at = crash_after.min(slots.len());
        for &slot in &slots[..crash_at] {
            // Commit points are fsync points: persist, then act.
            if !log.is_committed(slot as usize) {
                d.log_commit(slot, value_of(slot));
            }
            let _ = log.commit(slot as usize, value_of(slot));
            while let Some(&v) = log.next_applicable() {
                machine.apply(&v);
                log.mark_applied();
            }
            d.maybe_snapshot(&log, &machine);
        }

        // Crash + rebuild from the durable state alone.
        let (snapshot, records) = d.recover();
        let mut rebuilt: ReplicatedLog<u64> = ReplicatedLog::new();
        let mut remachine = TotalOrder::<u64>::default();
        if let Some(snap) = snapshot {
            for (i, &v) in snap.prefix.iter().enumerate() {
                let _ = rebuilt.commit(i, v);
            }
            for _ in 0..snap.prefix.len() {
                rebuilt.mark_applied();
            }
            remachine = snap.machine;
        }
        for WalRecord::Commit { slot, value } in records {
            let outcome = rebuilt.commit(slot as usize, value);
            prop_assert_ne!(
                outcome,
                CommitOutcome::Conflict,
                "durable records must agree with the snapshot"
            );
        }
        while let Some(&v) = rebuilt.next_applicable() {
            remachine.apply(&v);
            rebuilt.mark_applied();
        }

        prop_assert_eq!(rebuilt.prefix(), log.prefix());
        prop_assert_eq!(rebuilt.applied(), log.applied());
        prop_assert_eq!(remachine.digest(), machine.digest());
    }
}
