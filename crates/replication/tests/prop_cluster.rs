//! Property-based cluster tests: arbitrary request queues, queue skews and
//! Byzantine placements always converge to identical logs and digests.

use dex_replication::{run_cluster, ClusterOptions, Command};
use dex_types::SystemConfig;
use proptest::prelude::*;

fn command_strategy() -> impl Strategy<Value = Command> {
    prop_oneof![
        Just(Command::Noop),
        (0u64..4, 0u64..100).prop_map(|(k, v)| Command::put(k, v)),
        (0u64..4, 0u64..10).prop_map(|(k, d)| Command::add(k, d)),
        (0u64..4).prop_map(Command::delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn clusters_always_converge(
        base in proptest::collection::vec(command_strategy(), 1..5),
        rotations in proptest::collection::vec(0usize..4, 7),
        byz in proptest::option::of(1usize..7),
        seed in 0u64..5_000,
    ) {
        let config = SystemConfig::new(7, 1).unwrap();
        let pending: Vec<Vec<Command>> = rotations
            .iter()
            .map(|r| {
                let mut q = base.clone();
                let len = q.len();
                q.rotate_left(r % len);
                q
            })
            .collect();
        let target = base.len() as u64;
        let outcome = run_cluster(ClusterOptions {
            config,
            pending,
            target_slots: target,
            byzantine: byz.map(|b| vec![b]).unwrap_or_default(),
            seed,
        });
        prop_assert!(outcome.converged(), "logs {:?}", outcome.logs);
        // Every committed command is Noop or from somebody's queue.
        let log = outcome.logs.iter().flatten().next().unwrap();
        for cmd in log {
            prop_assert!(
                *cmd == Command::Noop || base.contains(cmd),
                "foreign command {cmd:?} committed"
            );
        }
    }
}
