//! The replica actor: one DEX instance per log slot, generic over the
//! replicated [`StateMachine`].

use crate::log::ReplicatedLog;
use crate::machine::StateMachine;
use dex_adversary::{ByzantineActor, ByzantineStrategy, ProtocolForgery};
use dex_conditions::FrequencyPair;
use dex_core::{DecisionPath, DexMsg, DexProcess};
use dex_obs::{obs_code, EventKind, Recorder};
use dex_simnet::{Actor, Context, DelayModel, Simulation};
use dex_types::{ProcessId, StepDepth, SystemConfig, Value};
use dex_underlying::{OracleConsensus, OracleMsg, Outbox};
use std::collections::{HashMap, VecDeque};

/// Per-slot DEX wire messages for command type `C`.
pub type SlotMsg<C> = DexMsg<C, OracleMsg<C>>;

/// Cluster wire messages: slot-tagged DEX traffic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReplicaMsg<C> {
    /// The log slot this message belongs to.
    pub slot: u64,
    /// The DEX message for that slot's instance.
    pub inner: SlotMsg<C>,
}

impl<C: Value> ProtocolForgery for ReplicaMsg<C> {
    type Value = C;

    /// A Byzantine replica opens the first few slots with its own
    /// (possibly equivocated) proposals.
    fn forge_proposal(me: ProcessId, _to: ProcessId, value: C) -> Vec<Self> {
        (0..4)
            .flat_map(|slot| {
                [
                    ReplicaMsg {
                        slot,
                        inner: DexMsg::Proposal(value.clone()),
                    },
                    ReplicaMsg {
                        slot,
                        inner: DexMsg::Idb(dex_broadcast::IdbMessage::Init {
                            key: me,
                            value: value.clone(),
                        }),
                    },
                ]
            })
            .collect()
    }

    /// Poison the two-step channel of whichever slot instance it observes
    /// being opened (inits only — keeps traffic finite).
    fn forge_reaction(_me: ProcessId, observed: &Self, _to: ProcessId, value: C) -> Vec<Self> {
        match &observed.inner {
            DexMsg::Idb(dex_broadcast::IdbMessage::Init { key, .. }) => vec![ReplicaMsg {
                slot: observed.slot,
                inner: DexMsg::Idb(dex_broadcast::IdbMessage::Echo { key: *key, value }),
            }],
            _ => Vec::new(),
        }
    }
}

type SlotInstance<C> = DexProcess<C, FrequencyPair, OracleConsensus<C>>;

/// How one slot decided at one replica.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SlotPath {
    /// The slot.
    pub slot: u64,
    /// Which DEX mechanism decided it.
    pub path: DecisionPath,
    /// Causal depth of the decision message.
    pub depth: StepDepth,
}

/// A correct replica: sequential multi-slot DEX, a replicated log and the
/// state machine `SM`.
///
/// The replica proposes for slot `s + 1` once slot `s` has decided locally;
/// its proposal is the first pending client command not yet in the
/// committed prefix, or the default ("noop") command when the queue is
/// empty. Messages for not-yet-proposed slots are processed immediately
/// (instances are created on demand), so a slow replica still helps fast
/// ones commit.
pub struct Replica<SM: StateMachine> {
    config: SystemConfig,
    me: ProcessId,
    coordinator: ProcessId,
    pending: VecDeque<SM::Command>,
    target_slots: u64,
    instances: HashMap<u64, SlotInstance<SM::Command>>,
    log: ReplicatedLog<SM::Command>,
    machine: SM,
    paths: Vec<SlotPath>,
    next_to_propose: u64,
    obs: Recorder,
}

impl<SM: StateMachine> Replica<SM> {
    /// Creates a replica with its locally observed client requests.
    pub fn new(
        config: SystemConfig,
        me: ProcessId,
        coordinator: ProcessId,
        pending: Vec<SM::Command>,
        target_slots: u64,
    ) -> Self {
        Replica {
            config,
            me,
            coordinator,
            pending: pending.into(),
            target_slots,
            instances: HashMap::new(),
            log: ReplicatedLog::new(),
            machine: SM::default(),
            paths: Vec::new(),
            next_to_propose: 0,
            obs: Recorder::disabled(),
        }
    }

    /// Turns on structured event recording for this replica (commit events
    /// plus the runtime's send/deliver stamps; see `dex-obs`).
    pub fn enable_obs(&mut self) {
        self.obs = Recorder::new(self.me.index() as u16);
    }

    /// The structured-event recorder.
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// This replica's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The committed log.
    pub fn log(&self) -> &ReplicatedLog<SM::Command> {
        &self.log
    }

    /// The applied state machine.
    pub fn machine(&self) -> &SM {
        &self.machine
    }

    /// Decision paths per slot, in decision order.
    pub fn paths(&self) -> &[SlotPath] {
        &self.paths
    }

    fn instance(&mut self, slot: u64) -> &mut SlotInstance<SM::Command> {
        let (config, me, coordinator) = (self.config, self.me, self.coordinator);
        self.instances.entry(slot).or_insert_with(|| {
            DexProcess::new(
                config,
                me,
                FrequencyPair::new(config).expect("n > 6t checked by cluster builder"),
                OracleConsensus::new(config, me, coordinator),
            )
        })
    }

    /// Picks the proposal for a slot: first pending command not already
    /// committed somewhere in the log prefix.
    fn next_proposal(&mut self) -> SM::Command {
        let prefix = self.log.prefix();
        while let Some(cmd) = self.pending.front().cloned() {
            if prefix.contains(&cmd) {
                self.pending.pop_front();
            } else {
                return cmd;
            }
        }
        SM::Command::default()
    }

    fn propose_due_slots(&mut self, ctx: &mut Context<'_, ReplicaMsg<SM::Command>>) {
        // Propose slot s when all slots < s have decided locally.
        while self.next_to_propose < self.target_slots
            && (self.next_to_propose == 0
                || self
                    .instances
                    .get(&(self.next_to_propose - 1))
                    .is_some_and(|i| i.decision().is_some()))
        {
            let slot = self.next_to_propose;
            self.next_to_propose += 1;
            let proposal = self.next_proposal();
            let mut out = Outbox::new();
            self.instance(slot).propose(proposal, ctx.rng(), &mut out);
            flush_slot(slot, out, ctx);
        }
    }

    fn apply_ready(&mut self) {
        while let Some(cmd) = self.log.next_applicable().cloned() {
            self.machine.apply(&cmd);
            self.log.mark_applied();
        }
    }
}

fn flush_slot<C: Value>(
    slot: u64,
    mut out: Outbox<SlotMsg<C>>,
    ctx: &mut Context<'_, ReplicaMsg<C>>,
) {
    for (dest, inner) in out.drain() {
        ctx.send_dest(dest, ReplicaMsg { slot, inner });
    }
}

impl<SM: StateMachine> Actor for Replica<SM> {
    type Msg = ReplicaMsg<SM::Command>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        self.propose_due_slots(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        let slot = msg.slot;
        if slot >= self.target_slots {
            return; // Byzantine traffic beyond the agreed horizon
        }
        let mut out = Outbox::new();
        let decision = {
            let instance = self.instance(slot);
            instance.on_message(from, &msg.inner, ctx.rng(), &mut out)
        };
        flush_slot(slot, out, ctx);
        if let Some(d) = decision {
            if self.obs.is_active() {
                self.obs.record(EventKind::Commit {
                    slot: slot as u32,
                    code: obs_code(&d.value),
                });
            }
            self.log.commit(slot as usize, d.value.clone());
            self.paths.push(SlotPath {
                slot,
                path: d.path,
                depth: ctx.depth(),
            });
            // Drop the command we proposed if it just committed.
            if self.pending.front() == Some(&d.value) {
                self.pending.pop_front();
            }
            self.apply_ready();
            self.propose_due_slots(ctx);
        }
    }
}

/// A cluster node: correct replica or Byzantine process.
pub enum Node<SM: StateMachine> {
    /// Correct replica.
    Correct(Replica<SM>),
    /// Byzantine replica (equivocates on the first slots and poisons
    /// whatever instances it observes).
    Byz(ByzantineActor<ReplicaMsg<SM::Command>>),
}

impl<SM: StateMachine> Actor for Node<SM> {
    type Msg = ReplicaMsg<SM::Command>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            Node::Correct(r) => r.on_start(ctx),
            Node::Byz(b) => b.on_start(ctx),
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            Node::Correct(r) => r.on_message(from, msg, ctx),
            Node::Byz(b) => b.on_message(from, msg, ctx),
        }
    }

    fn recorder_mut(&mut self) -> Option<&mut Recorder> {
        match self {
            Node::Correct(r) => r.obs.active_mut(),
            Node::Byz(_) => None,
        }
    }
}

/// Options for [`run_generic_cluster`] (see also `run_cluster` in the
/// crate root for the KV special case).
#[derive(Clone, Debug)]
pub struct GenericClusterOptions<C> {
    /// System size and fault bound (`n > 6t` — replicas run DEX-freq).
    pub config: SystemConfig,
    /// Per-replica client-request queues (index = replica id).
    pub pending: Vec<Vec<C>>,
    /// Number of log slots to commit.
    pub target_slots: u64,
    /// Indices of Byzantine replicas (at most `t`; `0` must stay correct —
    /// it coordinates the oracle fallback).
    pub byzantine: Vec<usize>,
    /// Values the Byzantine replicas equivocate between (ignored when
    /// `byzantine` is empty; must be non-empty otherwise).
    pub byz_values: Vec<C>,
    /// Simulation seed.
    pub seed: u64,
}

/// Result of a cluster run, generic over the state machine.
#[derive(Clone, Debug)]
pub struct GenericClusterOutcome<C> {
    /// Committed log prefix per replica (`None` for Byzantine replicas).
    pub logs: Vec<Option<Vec<C>>>,
    /// State digest per replica (`None` for Byzantine replicas).
    pub digests: Vec<Option<u64>>,
    /// Decision paths per replica.
    pub paths: Vec<Vec<SlotPath>>,
    /// Whether the simulation drained.
    pub quiescent: bool,
}

impl<C: Value> GenericClusterOutcome<C> {
    /// Whether all correct replicas committed the full target prefix with
    /// identical logs and identical state digests.
    pub fn converged(&self) -> bool {
        let mut logs = self.logs.iter().flatten();
        let Some(first) = logs.next() else {
            return false;
        };
        self.quiescent
            && logs.all(|l| l == first)
            && self
                .digests
                .iter()
                .flatten()
                .collect::<std::collections::HashSet<_>>()
                .len()
                == 1
    }

    /// Fraction of slot decisions (across correct replicas) on the
    /// one-step path.
    pub fn one_step_fraction(&self) -> f64 {
        let total: usize = self.paths.iter().map(Vec::len).sum();
        if total == 0 {
            return 0.0;
        }
        let one: usize = self
            .paths
            .iter()
            .flatten()
            .filter(|p| p.path == DecisionPath::OneStep)
            .count();
        one as f64 / total as f64
    }
}

/// Builds and runs a cluster of `Replica<SM>` to quiescence.
///
/// # Panics
///
/// Panics if the options are inconsistent (pending queues vs `n`, more than
/// `t` Byzantine replicas, replica 0 Byzantine, `n ≤ 6t`, or Byzantine
/// replicas without `byz_values`) or if a correct replica fails to commit
/// the full prefix (a liveness bug).
pub fn run_generic_cluster<SM: StateMachine>(
    options: GenericClusterOptions<SM::Command>,
) -> GenericClusterOutcome<SM::Command> {
    let cfg = options.config;
    assert!(
        cfg.supports_frequency_pair(),
        "replicas run DEX-freq: n > 6t"
    );
    assert_eq!(options.pending.len(), cfg.n(), "one queue per replica");
    assert!(options.byzantine.len() <= cfg.t(), "at most t Byzantine");
    assert!(!options.byzantine.contains(&0), "p0 coordinates the oracle");
    assert!(
        options.byzantine.is_empty() || !options.byz_values.is_empty(),
        "byzantine replicas need values to push"
    );

    let nodes: Vec<Node<SM>> = options
        .pending
        .iter()
        .enumerate()
        .map(|(i, queue)| {
            if options.byzantine.contains(&i) {
                Node::Byz(ByzantineActor::new(ByzantineStrategy::EchoPoison {
                    values: options.byz_values.clone(),
                }))
            } else {
                Node::Correct(Replica::new(
                    cfg,
                    ProcessId::new(i),
                    ProcessId::new(0),
                    queue.clone(),
                    options.target_slots,
                ))
            }
        })
        .collect();

    let mut sim = Simulation::builder(nodes)
        .seed(options.seed)
        .delay(DelayModel::Uniform { min: 1, max: 10 })
        .build();
    let run = sim.run(50_000_000);

    let mut logs = Vec::new();
    let mut digests = Vec::new();
    let mut paths = Vec::new();
    for node in sim.actors() {
        match node {
            Node::Correct(r) => {
                assert_eq!(
                    r.log().committed_prefix(),
                    options.target_slots as usize,
                    "replica {} missed slots",
                    r.me
                );
                logs.push(Some(r.log().prefix()));
                digests.push(Some(r.machine().digest()));
                paths.push(r.paths().to_vec());
            }
            Node::Byz(_) => {
                logs.push(None);
                digests.push(None);
                paths.push(Vec::new());
            }
        }
    }
    GenericClusterOutcome {
        logs,
        digests,
        paths,
        quiescent: run.quiescent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::TotalOrder;
    use crate::Command;

    fn cfg() -> SystemConfig {
        SystemConfig::new(7, 1).unwrap()
    }

    #[test]
    fn total_order_broadcast_delivers_identically() {
        // Atomic broadcast: arbitrary u64 payloads, every correct replica
        // delivers the same sequence.
        let payloads: Vec<u64> = vec![901, 902, 903, 904];
        let pending: Vec<Vec<u64>> = (0..7)
            .map(|i| {
                let mut p = payloads.clone();
                let len = p.len();
                p.rotate_left(i % len);
                p
            })
            .collect();
        for seed in 0..5 {
            let outcome = run_generic_cluster::<TotalOrder<u64>>(GenericClusterOptions {
                config: cfg(),
                pending: pending.clone(),
                target_slots: 4,
                byzantine: vec![6],
                byz_values: vec![666, 999],
                seed,
            });
            assert!(outcome.converged(), "seed {seed}: {:?}", outcome.logs);
            let delivered = outcome.logs[0].clone().unwrap();
            assert_eq!(delivered.len(), 4);
            for p in &delivered {
                assert!(payloads.contains(p) || *p == 0, "foreign payload {p}");
            }
        }
    }

    #[test]
    fn traced_cluster_passes_log_agreement_checks() {
        // Manual cluster build so we can switch on recording; the runner
        // helpers keep recording off for the measurement paths.
        let cfg = cfg();
        let nodes: Vec<Node<crate::KvStore>> = (0..7)
            .map(|i| {
                let mut r = Replica::new(
                    cfg,
                    ProcessId::new(i),
                    ProcessId::new(0),
                    vec![Command::put(5, 50), Command::put(6, 60)],
                    2,
                );
                r.enable_obs();
                Node::Correct(r)
            })
            .collect();
        let mut sim = Simulation::builder(nodes)
            .seed(11)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .build();
        assert!(sim.run(50_000_000).quiescent);
        let processes: Vec<dex_obs::ProcessTrace> = sim
            .actors()
            .iter()
            .map(|node| match node {
                Node::Correct(r) => r.obs().trace(),
                Node::Byz(_) => unreachable!(),
            })
            .collect();
        assert!(processes.iter().all(|p| !p.events.is_empty()));
        let run = dex_obs::RunTrace {
            meta: dex_obs::TraceMeta {
                seed: 11,
                n: 7,
                t: 1,
                algo: "replication".to_string(),
                rules: dex_obs::SchemeRules::Opaque,
                faulty: Vec::new(),
                legend: Vec::new(),
                chaos: None,
            },
            processes,
        };
        let report = dex_obs::check(&run);
        assert!(report.is_ok(), "{:?}", report.violations);
        let log_checks = report
            .checks
            .iter()
            .find(|(name, _)| *name == "log-agreement")
            .map(|(_, count)| *count)
            .unwrap();
        assert!(log_checks > 0, "commit events must drive log-agreement");
    }

    #[test]
    fn generic_and_kv_runners_share_machinery() {
        let outcome = run_generic_cluster::<crate::KvStore>(GenericClusterOptions {
            config: cfg(),
            pending: vec![vec![Command::put(5, 50)]; 7],
            target_slots: 1,
            byzantine: vec![],
            byz_values: vec![],
            seed: 3,
        });
        assert!(outcome.converged());
        assert_eq!(outcome.logs[0].clone().unwrap(), vec![Command::put(5, 50)]);
    }
}
