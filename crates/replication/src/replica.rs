//! The replica actor: one DEX instance per log slot, generic over the
//! replicated [`StateMachine`], with an optional pipelined mode that keeps
//! a window of `W` slots in flight concurrently (see [`SlotMux`]).

use crate::log::ReplicatedLog;
use crate::machine::StateMachine;
use crate::mux::{Checkout, SlotMux};
use crate::wal::{Durability, WalRecord};
use dex_adversary::{ByzantineActor, ByzantineStrategy, ProtocolForgery};
use dex_broadcast::{EchoAggregator, IdbMessage};
use dex_core::{DecisionPath, DexMsg, Reliable, ResendPolicy};
use dex_obs::{obs_code, EventKind, Recorder};
use dex_simnet::{
    Actor, Context, DelayModel, FaultSchedule, MsgClass, NetStats, Recoverable, Simulation,
};
use dex_types::{Dest, ProcessId, StepDepth, SystemConfig, Value};
use dex_underlying::{OracleMsg, Outbox};
use std::collections::{HashMap, VecDeque};

/// Per-slot DEX wire messages for command type `C`.
pub type SlotMsg<C> = DexMsg<C, OracleMsg<C>>;

/// Base retry timeout for catch-up requests, in virtual time units
/// (doubles each attempt, capped — see [`Replica`]'s liveness notes).
const CATCH_UP_RTO: u64 = 64;
/// Exponent cap for the catch-up backoff (`RTO << min(attempt, cap)`).
const CATCH_UP_BACKOFF_CAP: u32 = 6;
/// Retry budget: after this many unanswered rounds a recovering replica
/// stops asking and degrades to ordinary per-slot consensus traffic.
const CATCH_UP_MAX_ATTEMPTS: u32 = 12;
/// Maximum committed slots per [`ReplicaMsg::CatchUpReply`].
const CATCH_UP_CHUNK: u64 = 64;

/// Cluster wire messages: slot-tagged DEX traffic plus the catch-up
/// protocol a recovering or lagging replica uses to fetch the committed
/// prefix it missed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplicaMsg<C> {
    /// A DEX message for one slot's consensus instance.
    Slot {
        /// The log slot this message belongs to.
        slot: u64,
        /// The DEX message for that slot's instance.
        inner: SlotMsg<C>,
    },
    /// "Send me your committed slots starting at `from_slot`." Broadcast
    /// by a replica that detects a gap (typically after a restart).
    CatchUpRequest {
        /// First slot the requester is missing.
        from_slot: u64,
    },
    /// Committed `(slot, command)` pairs from the responder's log. Replies
    /// are **not** trusted individually: the requester adopts a slot only
    /// on `t + 1` matching replies (or a local committed witness), so `t`
    /// Byzantine responders can never inject a forged prefix.
    CatchUpReply {
        /// Committed slots, in ascending slot order.
        slots: Vec<(u64, C)>,
    },
    /// Self-addressed retry timer for the catch-up backoff loop (local
    /// only — ignored unless it arrives from this very replica).
    CatchUpTick,
    /// Underlying-consensus traffic for several slots, coalesced into one
    /// wire message. Pipelined replicas (`window > 1`) buffer the UC
    /// proposals of slots that fall back inside the same window and ship
    /// them to the coordinator together — one network round amortized
    /// across the window instead of one per falling-back slot.
    UcBatch {
        /// `(slot, message)` pairs, demultiplexed on arrival.
        entries: Vec<(u64, OracleMsg<C>)>,
    },
    /// Self-addressed flush timer for the UC coalescing buffer (local
    /// only — ignored unless it arrives from this very replica).
    UcFlushTick,
    /// Echoes across all in-flight slots that one replica emitted within
    /// one delivery tick, coalesced into a single multicast: `(slot,
    /// origin, value)` triples, demultiplexed on arrival in entry order
    /// through the exact per-slot path (horizon, retirement and quorum
    /// guards reapply). Only sent when echo aggregation is enabled.
    EchoBatch {
        /// Coalesced echoes, grouped by would-be send depth upstream.
        entries: Vec<(u64, ProcessId, C)>,
    },
    /// Self-addressed flush timer for the echo aggregator (local only —
    /// ignored unless it arrives from this very replica).
    EchoFlushTick,
}

/// Classifies cluster wire traffic for the per-class
/// [`NetStats`](dex_simnet::NetStats) breakdown. Slot-tagged DEX traffic
/// delegates to [`dex_core::dex_msg_class`]; [`ReplicaMsg::UcBatch`] stays
/// `Other` so `echoes_batched` counts echo aggregation alone.
pub fn replica_msg_class<C: Value>(msg: &ReplicaMsg<C>) -> MsgClass {
    match msg {
        ReplicaMsg::Slot { inner, .. } => dex_core::dex_msg_class(inner),
        ReplicaMsg::EchoBatch { entries } => MsgClass::Batch(entries.len() as u32),
        _ => MsgClass::Other,
    }
}

/// Wire size of cluster traffic: shallow except for the heap-carried
/// batch and catch-up payloads.
pub fn replica_msg_bytes<C: Value>(msg: &ReplicaMsg<C>) -> usize {
    let shallow = core::mem::size_of_val(msg);
    match msg {
        ReplicaMsg::EchoBatch { entries } => {
            shallow + entries.len() * core::mem::size_of::<(u64, ProcessId, C)>()
        }
        ReplicaMsg::UcBatch { entries } => {
            shallow + entries.len() * core::mem::size_of::<(u64, OracleMsg<C>)>()
        }
        ReplicaMsg::CatchUpReply { slots } => {
            shallow + slots.len() * core::mem::size_of::<(u64, C)>()
        }
        _ => shallow,
    }
}

impl<C: Value> ProtocolForgery for ReplicaMsg<C> {
    type Value = C;

    /// A Byzantine replica opens the first few slots with its own
    /// (possibly equivocated) proposals.
    fn forge_proposal(me: ProcessId, _to: ProcessId, value: C) -> Vec<Self> {
        (0..4)
            .flat_map(|slot| {
                [
                    ReplicaMsg::Slot {
                        slot,
                        inner: DexMsg::Proposal(value.clone()),
                    },
                    ReplicaMsg::Slot {
                        slot,
                        inner: DexMsg::Idb(dex_broadcast::IdbMessage::Init {
                            key: me,
                            value: value.clone(),
                        }),
                    },
                ]
            })
            .collect()
    }

    /// Poison the two-step channel of whichever slot instance it observes
    /// being opened (inits only — keeps traffic finite), and lie to
    /// recovering replicas: claim whatever slot they ask about committed
    /// the poison value. `t` such liars can never assemble the `t + 1`
    /// matching replies adoption requires.
    fn forge_reaction(_me: ProcessId, observed: &Self, _to: ProcessId, value: C) -> Vec<Self> {
        match observed {
            ReplicaMsg::Slot {
                slot,
                inner: DexMsg::Idb(dex_broadcast::IdbMessage::Init { key, .. }),
            } => vec![ReplicaMsg::Slot {
                slot: *slot,
                inner: DexMsg::Idb(dex_broadcast::IdbMessage::Echo { key: *key, value }),
            }],
            ReplicaMsg::CatchUpRequest { from_slot } => vec![ReplicaMsg::CatchUpReply {
                slots: vec![(*from_slot, value)],
            }],
            _ => Vec::new(),
        }
    }
}

/// How one slot decided at one replica.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SlotPath {
    /// The slot.
    pub slot: u64,
    /// Which DEX mechanism decided it.
    pub path: DecisionPath,
    /// Causal depth of the decision message.
    pub depth: StepDepth,
}

/// Pending quorum-validation state for the catch-up protocol: per missing
/// slot, the candidate values seen in replies and the distinct replicas
/// vouching for each (small linear structures — no hash-order dependence).
struct CatchUpState<C> {
    replies: HashMap<u64, Vec<(C, Vec<ProcessId>)>>,
    attempt: u32,
    active: bool,
}

impl<C> Default for CatchUpState<C> {
    fn default() -> Self {
        CatchUpState {
            replies: HashMap::new(),
            attempt: 0,
            active: false,
        }
    }
}

/// A correct replica: sequential multi-slot DEX, a replicated log and the
/// state machine `SM`.
///
/// The replica proposes for slot `s + 1` once slot `s` has committed
/// locally; its proposal is the first pending client command not yet in
/// the committed prefix, or the default ("noop") command when the queue is
/// empty. Messages for not-yet-proposed slots are processed immediately
/// (instances are created on demand), so a slow replica still helps fast
/// ones commit.
///
/// # Crash recovery
///
/// With a [`Durability`] store attached (see
/// [`enable_durability`](Self::enable_durability)), every commit is
/// WAL-appended and fsynced before it is acted on, and snapshots compact
/// the log on a fixed cadence. After a
/// [`CrashMode::Restart`](dex_simnet::CrashMode) window the runtime calls
/// [`Recoverable::restart`]: volatile state (instances, log, machine) is
/// wiped, the persisted snapshot + WAL are replayed — re-deriving a
/// committed prefix byte-identical to what was durable before the crash —
/// and the replica broadcasts [`ReplicaMsg::CatchUpRequest`] for whatever
/// the cluster decided while it was down, retrying with exponential
/// backoff until its log is complete (or the retry budget degrades it back
/// to ordinary consensus participation).
pub struct Replica<SM: StateMachine> {
    config: SystemConfig,
    me: ProcessId,
    coordinator: ProcessId,
    pending: VecDeque<SM::Command>,
    target_slots: u64,
    mux: SlotMux<SM::Command>,
    log: ReplicatedLog<SM::Command>,
    machine: SM,
    paths: Vec<SlotPath>,
    next_to_propose: u64,
    obs: Recorder,
    durable: Option<Durability<SM>>,
    catch_up: CatchUpState<SM::Command>,
    restarts: u32,
    /// UC proposals awaiting the coalescing flush (pipelined mode only).
    uc_pending: Vec<(u64, OracleMsg<SM::Command>)>,
    /// Whether a [`ReplicaMsg::UcFlushTick`] is currently in flight.
    uc_flush_armed: bool,
    /// Pending entries handed to in-flight slots (pipelined mode only):
    /// the first `claimed` entries of `pending` back open proposals, so
    /// the next slot to open proposes entry `claimed`, not the front —
    /// each in-flight slot carries a *distinct* client command.
    claimed: usize,
    /// Messages saved by UC coalescing: entries shipped minus batches sent.
    uc_coalesced: u64,
    /// Echo aggregation state, keyed `(slot, origin)`; `None` keeps the
    /// wire protocol byte-identical to pre-aggregation builds.
    agg: Option<EchoAggregator<(u64, ProcessId), SM::Command>>,
    /// Messages saved by echo aggregation: echoes shipped minus batches
    /// sent.
    echoes_coalesced: u64,
}

impl<SM: StateMachine> Replica<SM> {
    /// Creates a replica with its locally observed client requests.
    pub fn new(
        config: SystemConfig,
        me: ProcessId,
        coordinator: ProcessId,
        pending: Vec<SM::Command>,
        target_slots: u64,
    ) -> Self {
        Replica {
            config,
            me,
            coordinator,
            pending: pending.into(),
            target_slots,
            mux: SlotMux::new(config, me, coordinator),
            log: ReplicatedLog::new(),
            machine: SM::default(),
            paths: Vec::new(),
            next_to_propose: 0,
            obs: Recorder::disabled(),
            durable: None,
            catch_up: CatchUpState::default(),
            restarts: 0,
            uc_pending: Vec::new(),
            uc_flush_armed: false,
            claimed: 0,
            uc_coalesced: 0,
            agg: None,
            echoes_coalesced: 0,
        }
    }

    /// Turns on echo aggregation: outgoing `Dest::All` echoes across all
    /// in-flight slots are coalesced per delivery tick into
    /// [`ReplicaMsg::EchoBatch`] multicasts (see
    /// `dex_core::DexActor::enable_aggregation` for the single-shot
    /// analogue). Composes with pipelining: a window of `W` slots flooding
    /// echoes concurrently shares the same per-tick batches.
    pub fn enable_echo_aggregation(&mut self) {
        self.agg = Some(EchoAggregator::new());
    }

    /// Messages saved so far by echo aggregation.
    pub fn echoes_coalesced(&self) -> u64 {
        self.echoes_coalesced
    }

    /// Turns on the pipelined engine: up to `window` slots run their DEX
    /// instances concurrently, decided slots retire into the recycling
    /// pool once the committed floor slides a full window past them, and
    /// same-window UC fallbacks are coalesced into [`ReplicaMsg::UcBatch`]
    /// rounds. `window == 1` is the sequential pre-pipeline engine,
    /// byte-for-byte.
    pub fn enable_pipelining(&mut self, window: u64) {
        self.mux.set_window(window);
    }

    /// The pipeline window (`1` = sequential).
    pub fn window(&self) -> u64 {
        self.mux.window()
    }

    /// The slot mux (instance routing/recycling diagnostics).
    pub fn mux(&self) -> &SlotMux<SM::Command> {
        &self.mux
    }

    /// Messages saved so far by coalescing same-window UC fallbacks.
    pub fn uc_coalesced(&self) -> u64 {
        self.uc_coalesced
    }

    /// Attaches a durable store: every commit is WAL-logged + fsynced, and
    /// [`Recoverable::restart`] restores from it instead of cold-booting.
    pub fn enable_durability(&mut self, durable: Durability<SM>) {
        self.durable = Some(durable);
    }

    /// The durable store, if one is attached.
    pub fn durability(&self) -> Option<&Durability<SM>> {
        self.durable.as_ref()
    }

    /// How many times this replica has been restarted by the runtime.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Turns on structured event recording for this replica (commit events
    /// plus the runtime's send/deliver stamps; see `dex-obs`).
    pub fn enable_obs(&mut self) {
        self.obs = Recorder::new(self.me.index() as u16);
    }

    /// The structured-event recorder.
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// This replica's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The committed log.
    pub fn log(&self) -> &ReplicatedLog<SM::Command> {
        &self.log
    }

    /// The applied state machine.
    pub fn machine(&self) -> &SM {
        &self.machine
    }

    /// Decision paths per slot, in decision order.
    pub fn paths(&self) -> &[SlotPath] {
        &self.paths
    }

    /// Records a pool reuse as a structured event (the checker's
    /// `slot-reuse-isolation` invariant audits these).
    fn note_checkout(&mut self, slot: u64, how: Checkout) {
        if let Checkout::Recycled(freed) = how {
            if self.obs.is_active() {
                self.obs.record(EventKind::SlotReuse {
                    slot: slot as u32,
                    freed: freed as u32,
                });
            }
        }
    }

    /// Picks the proposal for a slot: first pending command not already
    /// committed somewhere in the log prefix.
    ///
    /// In pipelined mode each open slot must carry a *distinct* command,
    /// so the first `claimed` surviving entries are skipped — they already
    /// back slots in flight — and the claim count advances past the entry
    /// handed out here.
    fn next_proposal(&mut self) -> SM::Command {
        let prefix = self.log.prefix();
        while let Some(cmd) = self.pending.front().cloned() {
            if prefix.contains(&cmd) {
                self.pending.pop_front();
                self.claimed = self.claimed.saturating_sub(1);
            } else if self.mux.window() == 1 {
                return cmd;
            } else {
                break;
            }
        }
        if self.mux.window() == 1 {
            return SM::Command::default();
        }
        match self.pending.get(self.claimed).cloned() {
            Some(cmd) => {
                self.claimed += 1;
                cmd
            }
            None => SM::Command::default(),
        }
    }

    fn propose_due_slots(&mut self, ctx: &mut Context<'_, ReplicaMsg<SM::Command>>) {
        // Propose slot s while it lies inside the pipeline window above
        // the committed floor: every slot ≤ s − W has committed locally
        // (via own decision, restore or catch-up alike). With W = 1 this
        // is exactly the sequential rule — propose s once all slots < s
        // have committed.
        loop {
            let floor = self.log.committed_prefix() as u64;
            if self.next_to_propose >= self.target_slots
                || self.next_to_propose >= floor.saturating_add(self.mux.window())
            {
                break;
            }
            let slot = self.next_to_propose;
            self.next_to_propose += 1;
            if self.log.is_committed(slot as usize) {
                continue; // already known (restored or caught up)
            }
            if self.obs.is_active() {
                self.obs.record(EventKind::SlotPropose {
                    slot: slot as u32,
                    floor: floor as u32,
                });
            }
            let proposal = self.next_proposal();
            let mut out = Outbox::new();
            let how = {
                let (instance, how) = self.mux.checkout(slot);
                instance.propose(proposal, ctx.rng(), &mut out);
                how
            };
            self.note_checkout(slot, how);
            self.flush_slot(slot, out, ctx);
        }
        self.slide_window();
    }

    /// Retires decided slots a full window behind the committed floor into
    /// the recycling pool. No-op in sequential mode.
    fn slide_window(&mut self) {
        let window = self.mux.window();
        if window > 1 {
            let floor = self.log.committed_prefix() as u64;
            let retire_floor = floor.saturating_sub(window);
            self.mux.retire_below(retire_floor);
            // The aggregator's first-echo memory only matters while a
            // slot's instance is live; dropping retired keys bounds it to
            // O(window × n) entries regardless of run length.
            if let Some(agg) = self.agg.as_mut() {
                agg.retain_seen(|(slot, _)| *slot >= retire_floor);
            }
        }
    }

    fn apply_ready(&mut self) {
        while let Some(cmd) = self.log.next_applicable().cloned() {
            self.machine.apply(&cmd);
            self.log.mark_applied();
        }
        if let Some(durable) = &mut self.durable {
            durable.maybe_snapshot(&self.log, &self.machine);
        }
    }

    fn on_slot_msg(
        &mut self,
        from: ProcessId,
        slot: u64,
        inner: &SlotMsg<SM::Command>,
        ctx: &mut Context<'_, ReplicaMsg<SM::Command>>,
    ) {
        if slot >= self.target_slots {
            return; // Byzantine traffic beyond the agreed horizon
        }
        if self.mux.is_retired(slot) {
            // Retired ⊆ committed prefix: the instance has been recycled,
            // so instead of resurrecting it for a straggler, answer a late
            // *proposer* with a targeted catch-up reply — `t + 1` matching
            // replies let a lagging replica adopt the slot — and drop
            // other late traffic (echo obligations for every peer still
            // inside the window were discharged before retirement).
            if from != self.me {
                if let DexMsg::Proposal(_) = inner {
                    let value = self
                        .log
                        .get(slot as usize)
                        .expect("retired slots are committed")
                        .clone();
                    ctx.send(
                        from,
                        ReplicaMsg::CatchUpReply {
                            slots: vec![(slot, value)],
                        },
                    );
                }
            }
            return;
        }
        let mut out = Outbox::new();
        let (decision, how) = {
            let (instance, how) = self.mux.checkout(slot);
            (instance.on_message(from, inner, ctx.rng(), &mut out), how)
        };
        self.note_checkout(slot, how);
        self.flush_slot(slot, out, ctx);
        if let Some(d) = decision {
            // A restarted replica's fresh instance can re-decide a slot it
            // already restored from disk — agreement makes that a harmless
            // duplicate, and only a *new* commit is persisted and applied.
            let outcome = self.log.commit(slot as usize, d.value.clone());
            if !outcome.is_new() {
                return;
            }
            if self.obs.is_active() {
                self.obs.record(EventKind::Commit {
                    slot: slot as u32,
                    code: obs_code(&d.value),
                });
            }
            if let Some(durable) = &mut self.durable {
                durable.log_commit(slot, d.value.clone());
            }
            self.paths.push(SlotPath {
                slot,
                path: d.path,
                depth: ctx.depth(),
            });
            // Drop the command we proposed if it just committed. In
            // pipelined mode the committed value may back any in-flight
            // slot, so the whole claimed region is searched, and the claim
            // backing the removed entry is released.
            if self.mux.window() == 1 {
                if self.pending.front() == Some(&d.value) {
                    self.pending.pop_front();
                }
            } else if let Some(pos) = self
                .pending
                .iter()
                .take(self.claimed)
                .position(|c| c == &d.value)
            {
                self.pending.remove(pos);
                self.claimed -= 1;
            }
            self.apply_ready();
            self.propose_due_slots(ctx);
        }
    }

    /// Commits a slot learned through the catch-up protocol (quorum of
    /// matching replies) and persists it like any other commit.
    fn adopt_slot(&mut self, slot: u64, value: SM::Command) {
        if self.obs.is_active() {
            self.obs.record(EventKind::CatchUp {
                slot: slot as u32,
                code: obs_code(&value),
            });
        }
        let outcome = self.log.commit(slot as usize, value.clone());
        debug_assert!(outcome.is_new(), "adoption is guarded by is_committed");
        if outcome.is_new() {
            if let Some(durable) = &mut self.durable {
                durable.log_commit(slot, value);
            }
        }
    }

    /// Broadcasts a catch-up request for the first missing slot and arms
    /// the next backoff timer.
    fn request_catch_up(&mut self, ctx: &mut Context<'_, ReplicaMsg<SM::Command>>) {
        let prefix = self.log.committed_prefix() as u64;
        if prefix >= self.target_slots {
            self.catch_up.active = false;
            return;
        }
        self.catch_up.active = true;
        ctx.broadcast(ReplicaMsg::CatchUpRequest { from_slot: prefix });
        let backoff = CATCH_UP_RTO << self.catch_up.attempt.min(CATCH_UP_BACKOFF_CAP);
        self.catch_up.attempt += 1;
        ctx.send_self_after(backoff, ReplicaMsg::CatchUpTick);
    }

    fn on_catch_up_request(
        &mut self,
        from: ProcessId,
        from_slot: u64,
        ctx: &mut Context<'_, ReplicaMsg<SM::Command>>,
    ) {
        if from == self.me {
            return; // own broadcast echo
        }
        let prefix = self.log.committed_prefix() as u64;
        let until = prefix.min(from_slot.saturating_add(CATCH_UP_CHUNK));
        let slots: Vec<(u64, SM::Command)> = (from_slot..until)
            .map(|s| {
                let value = self.log.get(s as usize).expect("within committed prefix");
                (s, value.clone())
            })
            .collect();
        if !slots.is_empty() {
            ctx.send(from, ReplicaMsg::CatchUpReply { slots });
        }
    }

    fn on_catch_up_reply(
        &mut self,
        from: ProcessId,
        slots: &[(u64, SM::Command)],
        ctx: &mut Context<'_, ReplicaMsg<SM::Command>>,
    ) {
        let quorum = self.config.t() + 1;
        let mut adopted = false;
        for (slot, value) in slots {
            if *slot >= self.target_slots || self.log.is_committed(*slot as usize) {
                continue; // bogus, or already witnessed locally
            }
            let vouch_count = {
                let candidates = self.catch_up.replies.entry(*slot).or_default();
                let vouchers = match candidates.iter().position(|(v, _)| v == value) {
                    Some(i) => &mut candidates[i].1,
                    None => {
                        candidates.push((value.clone(), Vec::new()));
                        &mut candidates.last_mut().expect("just pushed").1
                    }
                };
                if !vouchers.contains(&from) {
                    vouchers.push(from);
                }
                vouchers.len()
            };
            if vouch_count >= quorum {
                self.adopt_slot(*slot, value.clone());
                self.catch_up.replies.remove(slot);
                adopted = true;
            }
        }
        if adopted {
            self.apply_ready();
            self.propose_due_slots(ctx);
            if self.log.committed_prefix() as u64 >= self.target_slots {
                self.catch_up.active = false;
            }
        }
    }

    fn on_catch_up_tick(
        &mut self,
        from: ProcessId,
        ctx: &mut Context<'_, ReplicaMsg<SM::Command>>,
    ) {
        if from != self.me || !self.catch_up.active {
            return; // forged tick, or the gap already closed
        }
        if self.log.committed_prefix() as u64 >= self.target_slots {
            self.catch_up.active = false;
            return;
        }
        if self.catch_up.attempt >= CATCH_UP_MAX_ATTEMPTS {
            // Degrade to fallback: stop the retry loop and let the live
            // per-slot consensus instances fill the remaining gaps.
            self.catch_up.active = false;
            return;
        }
        self.request_catch_up(ctx);
    }

    /// Flushes one slot instance's outbox onto the wire, tagging every
    /// message with its slot. `Dest` is forwarded untouched, so a protocol
    /// broadcast stays a single `Dest::All` slab entry — the zero-clone
    /// multicast fast path survives the slot layer.
    ///
    /// In pipelined mode, UC proposals bound for the coordinator are held
    /// back in the coalescing buffer instead: slots that fall back inside
    /// the same window share one [`ReplicaMsg::UcBatch`] round (flushed by
    /// a 1-tick self timer) rather than paying one message each.
    fn flush_slot(
        &mut self,
        slot: u64,
        mut out: Outbox<SlotMsg<SM::Command>>,
        ctx: &mut Context<'_, ReplicaMsg<SM::Command>>,
    ) {
        for (dest, inner) in out.drain() {
            match (self.agg.as_mut(), dest, inner) {
                (Some(agg), Dest::All, DexMsg::Idb(IdbMessage::Echo { key, value })) => {
                    agg.offer((slot, key), value, ctx.depth().next());
                }
                (_, Dest::To(to), DexMsg::Uc(m))
                    if self.mux.window() > 1 && to == self.coordinator =>
                {
                    self.uc_pending.push((slot, m));
                    if !self.uc_flush_armed {
                        self.uc_flush_armed = true;
                        ctx.send_self_after(1, ReplicaMsg::UcFlushTick);
                    }
                }
                (_, dest, inner) => ctx.send_dest(dest, ReplicaMsg::Slot { slot, inner }),
            }
        }
        if let Some(agg) = self.agg.as_mut() {
            if agg.try_arm() {
                ctx.send_self_after(1, ReplicaMsg::EchoFlushTick);
            }
        }
    }

    /// Ships the per-depth echo batches accumulated since the timer armed.
    fn on_echo_flush_tick(
        &mut self,
        from: ProcessId,
        ctx: &mut Context<'_, ReplicaMsg<SM::Command>>,
    ) {
        if from != self.me {
            return; // forged tick
        }
        // Aggregation off (or a restart raced the timer): `take_batches`
        // on a reset aggregator yields nothing.
        let Some(agg) = self.agg.as_mut() else { return };
        for (depth, entries) in agg.take_batches() {
            self.echoes_coalesced += entries.len() as u64 - 1;
            let entries: Vec<(u64, ProcessId, SM::Command)> = entries
                .into_iter()
                .map(|((slot, origin), value)| (slot, origin, value))
                .collect();
            ctx.send_dest_at(Dest::All, ReplicaMsg::EchoBatch { entries }, depth);
        }
    }

    /// Demultiplexes a coalesced echo batch back into per-slot instances.
    fn on_echo_batch(
        &mut self,
        from: ProcessId,
        entries: &[(u64, ProcessId, SM::Command)],
        ctx: &mut Context<'_, ReplicaMsg<SM::Command>>,
    ) {
        for (slot, origin, value) in entries {
            // Per-slot guards (horizon, retirement, first-echo) all apply
            // exactly as for un-batched echo traffic.
            let inner = DexMsg::Idb(IdbMessage::Echo {
                key: *origin,
                value: value.clone(),
            });
            self.on_slot_msg(from, *slot, &inner, ctx);
        }
    }

    /// Ships the coalesced UC proposals as one batch to the coordinator.
    fn on_uc_flush_tick(
        &mut self,
        from: ProcessId,
        ctx: &mut Context<'_, ReplicaMsg<SM::Command>>,
    ) {
        if from != self.me {
            return; // forged tick
        }
        self.uc_flush_armed = false;
        if self.uc_pending.is_empty() {
            return; // restart raced the timer
        }
        let entries = std::mem::take(&mut self.uc_pending);
        self.uc_coalesced += entries.len() as u64 - 1;
        ctx.send(self.coordinator, ReplicaMsg::UcBatch { entries });
    }

    /// Demultiplexes a coalesced UC batch back into per-slot instances.
    fn on_uc_batch(
        &mut self,
        from: ProcessId,
        entries: &[(u64, OracleMsg<SM::Command>)],
        ctx: &mut Context<'_, ReplicaMsg<SM::Command>>,
    ) {
        for (slot, m) in entries {
            // Per-slot guards (horizon, retirement, oracle authentication)
            // all apply exactly as for un-batched traffic.
            self.on_slot_msg(from, *slot, &DexMsg::Uc(m.clone()), ctx);
        }
    }

    /// Rebuilds volatile state from the durable store: the unsynced WAL
    /// tail is lost, then snapshot + surviving records re-derive the
    /// committed prefix (and applied machine) exactly as persisted.
    fn restore(&mut self) {
        self.mux.clear();
        self.uc_pending.clear();
        self.uc_flush_armed = false;
        if let Some(agg) = self.agg.as_mut() {
            // Restart amnesia covers the aggregation buffer too: pending
            // echoes die with the crash (resend/catch-up recovers), and the
            // first-echo memory must not outlive the instances it guarded.
            agg.reset();
        }
        self.claimed = 0;
        self.log = ReplicatedLog::new();
        self.machine = SM::default();
        self.paths.clear();
        self.next_to_propose = 0;
        self.catch_up = CatchUpState::default();
        let Some(durable) = &mut self.durable else {
            return; // nothing persisted: cold boot
        };
        let (snapshot, records) = durable.recover();
        if let Some(snap) = snapshot {
            for (i, cmd) in snap.prefix.iter().enumerate() {
                let _ = self.log.commit(i, cmd.clone());
            }
            for _ in 0..snap.prefix.len() {
                self.log.mark_applied();
            }
            self.machine = snap.machine;
        }
        for WalRecord::Commit { slot, value } in records {
            let _ = self.log.commit(slot as usize, value);
        }
        self.apply_ready();
    }
}

impl<SM: StateMachine> Actor for Replica<SM> {
    type Msg = ReplicaMsg<SM::Command>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        self.propose_due_slots(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        match msg {
            ReplicaMsg::Slot { slot, inner } => self.on_slot_msg(from, *slot, inner, ctx),
            ReplicaMsg::CatchUpRequest { from_slot } => {
                self.on_catch_up_request(from, *from_slot, ctx)
            }
            ReplicaMsg::CatchUpReply { slots } => self.on_catch_up_reply(from, slots, ctx),
            ReplicaMsg::CatchUpTick => self.on_catch_up_tick(from, ctx),
            ReplicaMsg::UcBatch { entries } => self.on_uc_batch(from, entries, ctx),
            ReplicaMsg::UcFlushTick => self.on_uc_flush_tick(from, ctx),
            ReplicaMsg::EchoBatch { entries } => self.on_echo_batch(from, entries, ctx),
            ReplicaMsg::EchoFlushTick => self.on_echo_flush_tick(from, ctx),
        }
    }

    fn msg_bytes(msg: &Self::Msg) -> usize {
        replica_msg_bytes(msg)
    }

    fn msg_class(msg: &Self::Msg) -> MsgClass {
        replica_msg_class(msg)
    }
}

impl<SM: StateMachine> Recoverable for Replica<SM> {
    /// Reboot after a restart-mode crash: wipe volatile state, replay
    /// snapshot + WAL, then re-enter the protocol — resume proposing and
    /// broadcast a catch-up request for whatever the cluster decided while
    /// this replica was down.
    fn restart(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        self.restarts += 1;
        self.restore();
        if self.obs.is_active() {
            // The recovered prefix, as the checker sees it: one CatchUp
            // event per slot re-derived from disk, validated against the
            // cluster's committed log ("recovered-prefix" invariant).
            for slot in 0..self.target_slots {
                if let Some(value) = self.log.get(slot as usize) {
                    let code = obs_code(value);
                    self.obs.record(EventKind::CatchUp {
                        slot: slot as u32,
                        code,
                    });
                }
            }
        }
        self.propose_due_slots(ctx);
        self.request_catch_up(ctx);
    }
}

/// A cluster node: correct replica or Byzantine process.
///
/// The variants are deliberately unboxed: a `Node` is an actor slot — one
/// per process for the lifetime of the run, moved only at construction —
/// so the size asymmetry costs nothing, while boxing would add an
/// indirection on every message delivery.
#[allow(clippy::large_enum_variant)]
pub enum Node<SM: StateMachine> {
    /// Correct replica.
    Correct(Replica<SM>),
    /// Byzantine replica (equivocates on the first slots and poisons
    /// whatever instances it observes).
    Byz(ByzantineActor<ReplicaMsg<SM::Command>>),
}

impl<SM: StateMachine> Actor for Node<SM> {
    type Msg = ReplicaMsg<SM::Command>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            Node::Correct(r) => r.on_start(ctx),
            Node::Byz(b) => b.on_start(ctx),
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            Node::Correct(r) => r.on_message(from, msg, ctx),
            Node::Byz(b) => b.on_message(from, msg, ctx),
        }
    }

    fn recorder_mut(&mut self) -> Option<&mut Recorder> {
        match self {
            Node::Correct(r) => r.obs.active_mut(),
            Node::Byz(_) => None,
        }
    }

    fn msg_bytes(msg: &Self::Msg) -> usize {
        replica_msg_bytes(msg)
    }

    fn msg_class(msg: &Self::Msg) -> MsgClass {
        replica_msg_class(msg)
    }
}

impl<SM: StateMachine> Recoverable for Node<SM> {
    /// Correct replicas rebuild from their durable store; Byzantine nodes
    /// ignore restarts (the adversary needs no recovery story — its state
    /// is its strategy).
    fn restart(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            Node::Correct(r) => Recoverable::restart(r, ctx),
            Node::Byz(_) => {}
        }
    }
}

/// Options for [`run_generic_cluster`] (see also `run_cluster` in the
/// crate root for the KV special case).
#[derive(Clone, Debug)]
pub struct GenericClusterOptions<C> {
    /// System size and fault bound (`n > 6t` — replicas run DEX-freq).
    pub config: SystemConfig,
    /// Per-replica client-request queues (index = replica id).
    pub pending: Vec<Vec<C>>,
    /// Number of log slots to commit.
    pub target_slots: u64,
    /// Indices of Byzantine replicas (at most `t`; `0` must stay correct —
    /// it coordinates the oracle fallback).
    pub byzantine: Vec<usize>,
    /// Values the Byzantine replicas equivocate between (ignored when
    /// `byzantine` is empty; must be non-empty otherwise).
    pub byz_values: Vec<C>,
    /// Simulation seed.
    pub seed: u64,
    /// Network fault schedule for the run (defaults to
    /// [`FaultSchedule::none`] — the paper's reliable-link model).
    pub faults: FaultSchedule,
    /// Attach a durable store (in-memory WAL + snapshots) to every correct
    /// replica, so `CrashMode::Restart` windows in `faults` exercise real
    /// snapshot + WAL recovery instead of cold reboots.
    pub durable: bool,
    /// Wrap every node in the `dex-core` resend layer (ack-tracked
    /// retransmission with exponential backoff). Required for liveness
    /// under sustained probabilistic loss; incompatible with restart
    /// crash windows in this runner.
    pub reliable: bool,
    /// Panic unless every correct replica commits the full target prefix.
    /// Turn off for runs that are *expected* to starve, e.g. sustained
    /// loss without the resend layer.
    pub require_convergence: bool,
    /// Pipeline window `W`: how many slots each replica keeps in flight
    /// concurrently. `1` (the default) is the sequential engine,
    /// byte-for-byte; larger windows enable slot recycling and UC
    /// coalescing (see [`Replica::enable_pipelining`]).
    pub window: u64,
    /// Coalesce each replica's per-tick `Dest::All` echoes into
    /// [`ReplicaMsg::EchoBatch`] multicasts (see
    /// [`Replica::enable_echo_aggregation`]). Off by default: the wire
    /// protocol stays byte-identical to pre-aggregation builds.
    pub aggregate: bool,
}

impl<C> GenericClusterOptions<C> {
    /// The defaults every pre-existing call site used implicitly: reliable
    /// links, no durability, no resend layer, convergence required.
    pub fn new(config: SystemConfig, pending: Vec<Vec<C>>, target_slots: u64, seed: u64) -> Self {
        GenericClusterOptions {
            config,
            pending,
            target_slots,
            byzantine: Vec::new(),
            byz_values: Vec::new(),
            seed,
            faults: FaultSchedule::none(),
            durable: false,
            reliable: false,
            require_convergence: true,
            window: 1,
            aggregate: false,
        }
    }
}

/// Result of a cluster run, generic over the state machine.
#[derive(Clone, Debug)]
pub struct GenericClusterOutcome<C> {
    /// Committed log prefix per replica (`None` for Byzantine replicas).
    pub logs: Vec<Option<Vec<C>>>,
    /// State digest per replica (`None` for Byzantine replicas).
    pub digests: Vec<Option<u64>>,
    /// Decision paths per replica.
    pub paths: Vec<Vec<SlotPath>>,
    /// Whether the simulation drained.
    pub quiescent: bool,
    /// Virtual time at which the run drained — the denominator of the
    /// committed-values-per-tick throughput metric.
    pub ticks: u64,
    /// Network-layer statistics for the run (multicasts, payload clones,
    /// bytes on wire, …).
    pub net: NetStats,
    /// Per-replica count of recycled slot instances (`0` for Byzantine
    /// replicas and in sequential mode).
    pub recycled: Vec<u64>,
    /// Per-replica count of messages saved by UC-batch coalescing.
    pub uc_coalesced: Vec<u64>,
    /// Per-replica count of messages saved by echo aggregation.
    pub echoes_coalesced: Vec<u64>,
}

impl<C: Value> GenericClusterOutcome<C> {
    /// Whether all correct replicas committed the full target prefix with
    /// identical logs and identical state digests.
    pub fn converged(&self) -> bool {
        let mut logs = self.logs.iter().flatten();
        let Some(first) = logs.next() else {
            return false;
        };
        self.quiescent
            && logs.all(|l| l == first)
            && self
                .digests
                .iter()
                .flatten()
                .collect::<std::collections::HashSet<_>>()
                .len()
                == 1
    }

    /// Fraction of slot decisions (across correct replicas) on the
    /// one-step path.
    pub fn one_step_fraction(&self) -> f64 {
        let total: usize = self.paths.iter().map(Vec::len).sum();
        if total == 0 {
            return 0.0;
        }
        let one: usize = self
            .paths
            .iter()
            .flatten()
            .filter(|p| p.path == DecisionPath::OneStep)
            .count();
        one as f64 / total as f64
    }
}

/// Builds and runs a cluster of `Replica<SM>` to quiescence (or the event
/// budget) under the configured fault schedule.
///
/// # Panics
///
/// Panics if the options are inconsistent (pending queues vs `n`, more than
/// `t` Byzantine replicas, replica 0 Byzantine, `n ≤ 6t`, or Byzantine
/// replicas without `byz_values`) or if `require_convergence` is set and a
/// correct replica fails to commit the full prefix (a liveness bug).
pub fn run_generic_cluster<SM: StateMachine>(
    options: GenericClusterOptions<SM::Command>,
) -> GenericClusterOutcome<SM::Command> {
    let cfg = options.config;
    assert!(
        cfg.supports_frequency_pair(),
        "replicas run DEX-freq: n > 6t"
    );
    assert_eq!(options.pending.len(), cfg.n(), "one queue per replica");
    assert!(options.byzantine.len() <= cfg.t(), "at most t Byzantine");
    assert!(!options.byzantine.contains(&0), "p0 coordinates the oracle");
    assert!(
        options.byzantine.is_empty() || !options.byz_values.is_empty(),
        "byzantine replicas need values to push"
    );

    let nodes: Vec<Node<SM>> = options
        .pending
        .iter()
        .enumerate()
        .map(|(i, queue)| {
            if options.byzantine.contains(&i) {
                Node::Byz(ByzantineActor::new(ByzantineStrategy::EchoPoison {
                    values: options.byz_values.clone(),
                }))
            } else {
                let mut replica = Replica::new(
                    cfg,
                    ProcessId::new(i),
                    ProcessId::new(0),
                    queue.clone(),
                    options.target_slots,
                );
                if options.durable {
                    replica.enable_durability(Durability::mem(DEFAULT_SNAPSHOT_EVERY));
                }
                if options.window > 1 {
                    replica.enable_pipelining(options.window);
                }
                if options.aggregate {
                    replica.enable_echo_aggregation();
                }
                Node::Correct(replica)
            }
        })
        .collect();

    if options.reliable {
        // The resend layer changes the wire type, so this arm builds its
        // own simulation; restart hooks are not threaded through the
        // wrapper (use `durable` + restart windows on the plain arm).
        let wrapped: Vec<Reliable<Node<SM>>> = nodes
            .into_iter()
            .map(|n| Reliable::new(n, ResendPolicy::default()))
            .collect();
        let mut sim = Simulation::builder(wrapped)
            .seed(options.seed)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .faults(options.faults.clone())
            .build();
        let run = sim.run(50_000_000);
        let quiescent = run.quiescent;
        let ticks = run.ended_at.as_units();
        let net = sim.stats().clone();
        collect_outcome(
            sim.actors().iter().map(Reliable::inner),
            &options,
            quiescent,
            ticks,
            net,
        )
    } else {
        let mut sim = Simulation::builder(nodes)
            .seed(options.seed)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .faults(options.faults.clone())
            .recoverable()
            .build();
        let run = sim.run(50_000_000);
        let quiescent = run.quiescent;
        let ticks = run.ended_at.as_units();
        let net = sim.stats().clone();
        collect_outcome(sim.actors().iter(), &options, quiescent, ticks, net)
    }
}

/// Snapshot cadence (applied slots between snapshots) used by
/// [`run_generic_cluster`] when `durable` is set.
const DEFAULT_SNAPSHOT_EVERY: usize = 4;

fn collect_outcome<'a, SM: StateMachine>(
    nodes: impl Iterator<Item = &'a Node<SM>>,
    options: &GenericClusterOptions<SM::Command>,
    quiescent: bool,
    ticks: u64,
    net: NetStats,
) -> GenericClusterOutcome<SM::Command> {
    let mut logs = Vec::new();
    let mut digests = Vec::new();
    let mut paths = Vec::new();
    let mut recycled = Vec::new();
    let mut uc_coalesced = Vec::new();
    let mut echoes_coalesced = Vec::new();
    for node in nodes {
        match node {
            Node::Correct(r) => {
                if options.require_convergence {
                    assert_eq!(
                        r.log().committed_prefix(),
                        options.target_slots as usize,
                        "replica {} missed slots",
                        r.me
                    );
                }
                logs.push(Some(r.log().prefix()));
                digests.push(Some(r.machine().digest()));
                paths.push(r.paths().to_vec());
                recycled.push(r.mux().recycled());
                uc_coalesced.push(r.uc_coalesced());
                echoes_coalesced.push(r.echoes_coalesced());
            }
            Node::Byz(_) => {
                logs.push(None);
                digests.push(None);
                paths.push(Vec::new());
                recycled.push(0);
                uc_coalesced.push(0);
                echoes_coalesced.push(0);
            }
        }
    }
    GenericClusterOutcome {
        logs,
        digests,
        paths,
        quiescent,
        ticks,
        net,
        recycled,
        uc_coalesced,
        echoes_coalesced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::TotalOrder;
    use crate::Command;

    fn cfg() -> SystemConfig {
        SystemConfig::new(7, 1).unwrap()
    }

    #[test]
    fn durable_restart_replays_disk_and_catches_up() {
        // Replica 3 crashes with amnesia at t = 40 and reboots at t = 4000,
        // long after the survivors finished every slot. Recovery = WAL +
        // snapshot replay for what it had, catch-up quorum for the rest.
        let outcome = run_generic_cluster::<crate::KvStore>(GenericClusterOptions {
            faults: FaultSchedule::none().crash_restart(ProcessId::new(3), 40, 4_000),
            durable: true,
            ..GenericClusterOptions::new(
                cfg(),
                vec![vec![Command::put(1, 10), Command::put(2, 20), Command::add(1, 7)]; 7],
                6,
                9,
            )
        });
        assert!(outcome.converged(), "{:?}", outcome.logs);
    }

    #[test]
    fn cold_restart_catches_up_from_peers_alone() {
        // No durable store at all: the reboot starts from nothing and the
        // catch-up protocol must deliver the entire prefix by itself.
        let outcome = run_generic_cluster::<TotalOrder<u64>>(GenericClusterOptions {
            faults: FaultSchedule::none().crash_restart(ProcessId::new(5), 10, 3_000),
            durable: false,
            ..GenericClusterOptions::new(cfg(), vec![vec![41, 42]; 7], 4, 12)
        });
        assert!(outcome.converged(), "{:?}", outcome.logs);
    }

    #[test]
    fn byzantine_catch_up_lies_cannot_poison_recovery() {
        // f = t: the Byzantine replica answers every CatchUpRequest with a
        // forged prefix. Adoption needs t + 1 matching replies, so the lie
        // never reaches the log and the poison values never appear.
        for seed in [2, 7, 21] {
            let outcome = run_generic_cluster::<TotalOrder<u64>>(GenericClusterOptions {
                byzantine: vec![6],
                byz_values: vec![666, 999],
                faults: FaultSchedule::none().crash_restart(ProcessId::new(2), 30, 5_000),
                durable: true,
                ..GenericClusterOptions::new(cfg(), vec![vec![701, 702]; 7], 4, seed)
            });
            assert!(outcome.converged(), "seed {seed}: {:?}", outcome.logs);
            for cmd in outcome.logs.iter().flatten().flatten() {
                assert!(*cmd != 666 && *cmd != 999, "poison committed: {cmd}");
            }
        }
    }

    #[test]
    fn traced_restart_run_passes_recovered_prefix_checks() {
        // Manual build so recording is on: the victim's post-restart
        // CatchUp events must match what the cluster committed — the
        // checker's "recovered-prefix" invariant, driven end to end.
        let cfg = cfg();
        let victim = 3usize;
        let nodes: Vec<Node<crate::KvStore>> = (0..7)
            .map(|i| {
                let mut r = Replica::new(
                    cfg,
                    ProcessId::new(i),
                    ProcessId::new(0),
                    vec![
                        Command::put(5, 50),
                        Command::put(6, 60),
                        Command::put(7, 70),
                    ],
                    3,
                );
                r.enable_durability(Durability::mem(2));
                r.enable_obs();
                Node::Correct(r)
            })
            .collect();
        let mut sim = Simulation::builder(nodes)
            .seed(17)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .faults(FaultSchedule::none().crash_restart(ProcessId::new(victim), 40, 5_000))
            .recoverable()
            .build();
        assert!(sim.run(50_000_000).quiescent);
        for node in sim.actors() {
            let Node::Correct(r) = node else {
                unreachable!()
            };
            assert_eq!(r.log().committed_prefix(), 3, "replica {} short", r.me());
        }
        let Node::Correct(victim_replica) = &sim.actors()[victim] else {
            unreachable!()
        };
        assert_eq!(victim_replica.restarts(), 1, "the reboot hook must run");

        let processes: Vec<dex_obs::ProcessTrace> = sim
            .actors()
            .iter()
            .map(|node| {
                let Node::Correct(r) = node else {
                    unreachable!()
                };
                r.obs().trace()
            })
            .collect();
        let run = dex_obs::RunTrace {
            meta: dex_obs::TraceMeta {
                seed: 17,
                n: 7,
                t: 1,
                algo: "replication".to_string(),
                rules: dex_obs::SchemeRules::Opaque,
                faulty: Vec::new(),
                legend: Vec::new(),
                chaos: Some(dex_obs::ChaosMeta {
                    last_heal: 5_000,
                    eventually_clean: false,
                    crashes: vec![(victim as u16, 40, Some(5_000))],
                }),
                pipeline: None,
            },
            processes,
        };
        let report = dex_obs::check(&run);
        assert!(report.is_ok(), "{:?}", report.violations);
        let recovered = report
            .checks
            .iter()
            .find(|(name, _)| *name == "recovered-prefix")
            .map(|(_, count)| *count)
            .unwrap();
        assert!(recovered > 0, "restart must re-derive committed slots");
    }

    #[test]
    fn sustained_loss_starves_without_resend_and_converges_with_it() {
        // Every link drops 25% of traffic for the whole run. Plain runs
        // lose protocol messages for good and (at least one replica) never
        // completes the prefix; wrapping the cluster in the dex-core
        // resend layer restores liveness with the very same seed.
        let options = GenericClusterOptions {
            faults: FaultSchedule::none().lossy_link(None, None, 0.25, 0.0),
            require_convergence: false,
            ..GenericClusterOptions::new(cfg(), vec![vec![81u64, 82]; 7], 3, 31)
        };
        let starved = run_generic_cluster::<TotalOrder<u64>>(options.clone());
        let short = starved.logs.iter().flatten().any(|log| log.len() < 3);
        assert!(short, "25% loss without retransmission must starve");

        let reliable = run_generic_cluster::<TotalOrder<u64>>(GenericClusterOptions {
            reliable: true,
            require_convergence: true,
            ..options
        });
        assert!(reliable.converged(), "{:?}", reliable.logs);
    }

    #[test]
    fn total_order_broadcast_delivers_identically() {
        // Atomic broadcast: arbitrary u64 payloads, every correct replica
        // delivers the same sequence.
        let payloads: Vec<u64> = vec![901, 902, 903, 904];
        let pending: Vec<Vec<u64>> = (0..7)
            .map(|i| {
                let mut p = payloads.clone();
                let len = p.len();
                p.rotate_left(i % len);
                p
            })
            .collect();
        for seed in 0..5 {
            let outcome = run_generic_cluster::<TotalOrder<u64>>(GenericClusterOptions {
                byzantine: vec![6],
                byz_values: vec![666, 999],
                ..GenericClusterOptions::new(cfg(), pending.clone(), 4, seed)
            });
            assert!(outcome.converged(), "seed {seed}: {:?}", outcome.logs);
            let delivered = outcome.logs[0].clone().unwrap();
            assert_eq!(delivered.len(), 4);
            for p in &delivered {
                assert!(payloads.contains(p) || *p == 0, "foreign payload {p}");
            }
        }
    }

    #[test]
    fn traced_cluster_passes_log_agreement_checks() {
        // Manual cluster build so we can switch on recording; the runner
        // helpers keep recording off for the measurement paths.
        let cfg = cfg();
        let nodes: Vec<Node<crate::KvStore>> = (0..7)
            .map(|i| {
                let mut r = Replica::new(
                    cfg,
                    ProcessId::new(i),
                    ProcessId::new(0),
                    vec![Command::put(5, 50), Command::put(6, 60)],
                    2,
                );
                r.enable_obs();
                Node::Correct(r)
            })
            .collect();
        let mut sim = Simulation::builder(nodes)
            .seed(11)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .build();
        assert!(sim.run(50_000_000).quiescent);
        let processes: Vec<dex_obs::ProcessTrace> = sim
            .actors()
            .iter()
            .map(|node| match node {
                Node::Correct(r) => r.obs().trace(),
                Node::Byz(_) => unreachable!(),
            })
            .collect();
        assert!(processes.iter().all(|p| !p.events.is_empty()));
        let run = dex_obs::RunTrace {
            meta: dex_obs::TraceMeta {
                seed: 11,
                n: 7,
                t: 1,
                algo: "replication".to_string(),
                rules: dex_obs::SchemeRules::Opaque,
                faulty: Vec::new(),
                legend: Vec::new(),
                chaos: None,
                pipeline: None,
            },
            processes,
        };
        let report = dex_obs::check(&run);
        assert!(report.is_ok(), "{:?}", report.violations);
        let log_checks = report
            .checks
            .iter()
            .find(|(name, _)| *name == "log-agreement")
            .map(|(_, count)| *count)
            .unwrap();
        assert!(log_checks > 0, "commit events must drive log-agreement");
    }

    #[test]
    fn aggregated_cluster_converges_with_fewer_messages() {
        // Same workload, same seeds, aggregation off vs on (composed with
        // a pipeline window so several slots flood echoes concurrently):
        // both converge to identical logs within each run, and the
        // aggregated run ships strictly fewer messages.
        for seed in [3, 19] {
            let base =
                GenericClusterOptions::new(cfg(), vec![vec![501u64, 502, 503, 504]; 7], 4, seed);
            let plain = run_generic_cluster::<TotalOrder<u64>>(GenericClusterOptions {
                window: 4,
                ..base.clone()
            });
            let agg = run_generic_cluster::<TotalOrder<u64>>(GenericClusterOptions {
                window: 4,
                aggregate: true,
                ..base
            });
            assert!(plain.converged(), "seed {seed}: {:?}", plain.logs);
            assert!(agg.converged(), "seed {seed}: {:?}", agg.logs);
            assert!(
                agg.net.sent < plain.net.sent,
                "seed {seed}: aggregation must cut traffic ({} vs {})",
                agg.net.sent,
                plain.net.sent
            );
            assert!(agg.net.echoes_batched > 0, "seed {seed}");
            assert!(
                agg.echoes_coalesced.iter().sum::<u64>() > 0,
                "seed {seed}: correct replicas must coalesce echoes"
            );
            assert_eq!(agg.net.payload_clones, 0, "seed {seed}");
            // Aggregation diverts every Dest::All echo into batches.
            assert_eq!(agg.net.sent_echo, 0, "seed {seed}");
        }
    }

    #[test]
    fn aggregated_cluster_recovers_through_restart() {
        // Restart amnesia must cover the aggregation buffer: the victim's
        // pending echoes die with the crash, recovery proceeds via WAL +
        // catch-up exactly as without aggregation.
        let outcome = run_generic_cluster::<TotalOrder<u64>>(GenericClusterOptions {
            faults: FaultSchedule::none().crash_restart(ProcessId::new(4), 30, 4_000),
            durable: true,
            window: 2,
            aggregate: true,
            ..GenericClusterOptions::new(cfg(), vec![vec![601u64, 602]; 7], 3, 23)
        });
        assert!(outcome.converged(), "{:?}", outcome.logs);
    }

    #[test]
    fn generic_and_kv_runners_share_machinery() {
        let outcome = run_generic_cluster::<crate::KvStore>(GenericClusterOptions::new(
            cfg(),
            vec![vec![Command::put(5, 50)]; 7],
            1,
            3,
        ));
        assert!(outcome.converged());
        assert_eq!(outcome.logs[0].clone().unwrap(), vec![Command::put(5, 50)]);
    }
}
