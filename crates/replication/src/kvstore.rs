//! The deterministic key-value state machine.

use crate::command::Command;
use std::collections::BTreeMap;

/// A deterministic key-value store: identical command sequences yield
/// identical states (and digests) on every replica.
///
/// # Examples
///
/// ```
/// use dex_replication::{Command, KvStore};
/// let mut kv = KvStore::new();
/// kv.apply(Command::put(1, 10));
/// kv.apply(Command::add(1, 5));
/// assert_eq!(kv.get(1), Some(15));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct KvStore {
    map: BTreeMap<u64, u64>,
    applied: u64,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Applies one command.
    pub fn apply(&mut self, cmd: Command) {
        self.applied += 1;
        match cmd {
            Command::Noop => {}
            Command::Put { key, value } => {
                self.map.insert(key, value);
            }
            Command::Add { key, delta } => {
                *self.map.entry(key).or_insert(0) =
                    self.map.get(&key).copied().unwrap_or(0).wrapping_add(delta);
            }
            Command::Delete { key } => {
                self.map.remove(&key);
            }
        }
    }

    /// Reads a key.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.map.get(&key).copied()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of commands applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// An order-sensitive digest of the full state (FNV-1a over the sorted
    /// entries and the applied count) — equal digests ⇔ replicas converged.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.applied);
        for (k, v) in &self.map {
            mix(*k);
            mix(*v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_semantics() {
        let mut kv = KvStore::new();
        kv.apply(Command::put(1, 10));
        kv.apply(Command::put(2, 20));
        kv.apply(Command::add(2, 2));
        kv.apply(Command::add(3, 7)); // missing key counts as 0
        kv.apply(Command::delete(1));
        kv.apply(Command::Noop);
        assert_eq!(kv.get(1), None);
        assert_eq!(kv.get(2), Some(22));
        assert_eq!(kv.get(3), Some(7));
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.applied(), 6);
    }

    #[test]
    fn add_wraps_instead_of_panicking() {
        let mut kv = KvStore::new();
        kv.apply(Command::put(1, u64::MAX));
        kv.apply(Command::add(1, 1));
        assert_eq!(kv.get(1), Some(0));
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = KvStore::new();
        a.apply(Command::put(1, 5));
        a.apply(Command::add(1, 5));
        let mut b = KvStore::new();
        b.apply(Command::add(1, 5));
        b.apply(Command::put(1, 5));
        // Same multiset of commands, different order ⇒ different state.
        assert_ne!(a.get(1), b.get(1));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn identical_histories_identical_digests() {
        let cmds = [Command::put(1, 2), Command::add(1, 3), Command::delete(9)];
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        for c in cmds {
            a.apply(c);
            b.apply(c);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
    }

    #[test]
    fn noop_changes_digest_via_applied_count() {
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.apply(Command::Noop);
        assert_ne!(a.digest(), b.digest());
        b.apply(Command::Noop);
        assert_eq!(a.digest(), b.digest());
    }
}
