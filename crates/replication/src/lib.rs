//! A replicated state machine built on DEX — the paper's motivating
//! application (§1.1) as an actual substrate.
//!
//! "The replicated servers need to agree on the processing order of the
//! update requests. If a client broadcasts its request to all servers and
//! there is no contention, then all servers propose the same request as
//! the candidate they will handle next." — this crate turns that paragraph
//! into code:
//!
//! * [`Command`] — the replicated operations of a small key-value store.
//! * [`KvStore`] — the deterministic state machine, with a state digest
//!   for cross-replica comparison.
//! * [`ReplicatedLog`] — the slot-indexed command log with in-order apply.
//! * [`Replica`] — a simulation actor running **one DEX instance per log
//!   slot** (proposals move to the next slot once the previous one
//!   commits), multiplexing all slot traffic over a single channel and
//!   applying committed commands in order. With
//!   [`Replica::enable_pipelining`] the chain becomes a sliding window:
//!   up to `W` slots run concurrently past the committed prefix, slot
//!   state is pooled and recycled via [`SlotMux`], and same-window UC
//!   fallbacks coalesce into one batched round (see DESIGN.md §13).
//!
//! Under low request contention almost every slot commits on DEX's
//! one-step path; the tests verify that all correct replicas end with
//! byte-identical logs and store digests even with a Byzantine replica in
//! the group.
//!
//! # Examples
//!
//! ```
//! use dex_replication::{run_cluster, ClusterOptions, Command};
//! use dex_types::SystemConfig;
//!
//! let outcome = run_cluster(ClusterOptions {
//!     config: SystemConfig::new(7, 1)?,
//!     // Each replica observed the same two client requests.
//!     pending: vec![vec![Command::put(1, 10), Command::put(2, 20)]; 7],
//!     target_slots: 2,
//!     byzantine: vec![],
//!     seed: 1,
//! });
//! assert!(outcome.converged());
//! assert_eq!(outcome.logs[0].as_ref().unwrap().len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod command;
mod kvstore;
mod log;
mod machine;
mod mux;
mod replica;
mod wal;

pub use cluster::{run_cluster, ClusterOptions, ClusterOutcome};
pub use command::Command;
pub use kvstore::KvStore;
pub use log::{CommitOutcome, ReplicatedLog};
pub use machine::{StateMachine, TotalOrder};
pub use mux::{Checkout, SlotInstance, SlotMux};
pub use replica::{
    replica_msg_bytes, replica_msg_class, run_generic_cluster, GenericClusterOptions,
    GenericClusterOutcome, Node, Replica, ReplicaMsg, SlotMsg, SlotPath,
};
pub use wal::{Durability, FileWal, MemWal, Snapshot, Wal, WalCodec, WalRecord};
