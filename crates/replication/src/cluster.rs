//! Convenience KV-cluster runner (the common case of
//! [`run_generic_cluster`](crate::run_generic_cluster)).

use crate::command::Command;
use crate::kvstore::KvStore;
use crate::replica::{run_generic_cluster, GenericClusterOptions, GenericClusterOutcome};
use dex_types::SystemConfig;

/// Options for [`run_cluster`].
#[derive(Clone, Debug)]
pub struct ClusterOptions {
    /// System size and fault bound (`n > 6t` — replicas run DEX-freq).
    pub config: SystemConfig,
    /// Per-replica client-request queues (index = replica id).
    pub pending: Vec<Vec<Command>>,
    /// Number of log slots to commit.
    pub target_slots: u64,
    /// Indices of Byzantine replicas (at most `t`; `0` must stay correct).
    pub byzantine: Vec<usize>,
    /// Simulation seed.
    pub seed: u64,
}

/// Result of a KV-cluster run.
pub type ClusterOutcome = GenericClusterOutcome<Command>;

/// Builds and runs a replicated-KV cluster to quiescence. Byzantine
/// replicas equivocate between two recognisable poison commands
/// (`put(666,666)` / `put(999,999)`), which the tests use to confirm
/// forged proposals never commit.
///
/// # Panics
///
/// Same conditions as [`run_generic_cluster`].
pub fn run_cluster(options: ClusterOptions) -> ClusterOutcome {
    run_generic_cluster::<KvStore>(GenericClusterOptions {
        byzantine: options.byzantine,
        byz_values: vec![Command::put(666, 666), Command::put(999, 999)],
        ..GenericClusterOptions::new(
            options.config,
            options.pending,
            options.target_slots,
            options.seed,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::new(7, 1).unwrap()
    }

    #[test]
    fn uncontended_cluster_commits_on_the_fast_path() {
        let requests = vec![Command::put(1, 10), Command::add(1, 5), Command::delete(2)];
        let outcome = run_cluster(ClusterOptions {
            config: cfg(),
            pending: vec![requests.clone(); 7],
            target_slots: 3,
            byzantine: vec![],
            seed: 42,
        });
        assert!(outcome.converged());
        let log = outcome.logs[0].clone().unwrap();
        assert_eq!(log, requests);
        // Identical queues ⇒ unanimous proposals ⇒ all one-step.
        assert_eq!(outcome.one_step_fraction(), 1.0);
    }

    #[test]
    fn contended_cluster_still_converges() {
        // Every replica observed the requests in a different order.
        let base = [
            Command::put(1, 10),
            Command::put(2, 20),
            Command::add(1, 1),
            Command::delete(2),
        ];
        let pending: Vec<Vec<Command>> = (0..7)
            .map(|i| {
                let mut v = base.to_vec();
                v.rotate_left(i % base.len());
                v
            })
            .collect();
        for seed in 0..5 {
            let outcome = run_cluster(ClusterOptions {
                config: cfg(),
                pending: pending.clone(),
                target_slots: 4,
                byzantine: vec![],
                seed,
            });
            assert!(outcome.converged(), "seed {seed}");
        }
    }

    #[test]
    fn byzantine_replica_cannot_diverge_the_cluster() {
        let requests = vec![Command::put(1, 1), Command::put(2, 2), Command::put(3, 3)];
        for seed in 0..5 {
            let outcome = run_cluster(ClusterOptions {
                config: cfg(),
                pending: vec![requests.clone(); 7],
                target_slots: 3,
                byzantine: vec![6],
                seed,
            });
            assert!(outcome.converged(), "seed {seed}");
            // The forged 666/999 commands never enter the log: they are
            // only ever proposed by the Byzantine replica.
            let log = outcome.logs[0].clone().unwrap();
            assert!(
                !log.contains(&Command::put(666, 666)),
                "seed {seed}: {log:?}"
            );
        }
    }

    #[test]
    fn empty_queues_fill_slots_with_noops() {
        let outcome = run_cluster(ClusterOptions {
            config: cfg(),
            pending: vec![vec![]; 7],
            target_slots: 2,
            byzantine: vec![],
            seed: 7,
        });
        assert!(outcome.converged());
        assert_eq!(
            outcome.logs[0].clone().unwrap(),
            vec![Command::Noop, Command::Noop]
        );
    }
}
