//! `SlotMux` — the slot-demultiplexing and instance-recycling layer of the
//! pipelined replica.
//!
//! A replica runs one DEX instance per log slot. Sequential replication
//! (`window = 1`) only ever grows the instance map; the pipelined engine
//! keeps a *window* of `W` in-flight slots and turns the map into a
//! recycling pool:
//!
//! * **Demux**: slot-tagged wire traffic (`ReplicaMsg::Slot { slot, .. }`)
//!   is routed to the per-slot [`DexProcess`], created on demand. Routing
//!   never touches the payload — messages arrive by reference from the
//!   simulator's shared-payload slab, so the `Dest::All` zero-clone fast
//!   path is preserved end to end.
//! * **Recycle**: once the committed floor has slid a full window past a
//!   decided slot, that slot's instance is retired into a free pool and its
//!   allocations — the `J1`/`J2` [`View`](dex_types::View) tally buffers,
//!   the IDB witness maps, the UC forwarding outbox — are reset in place
//!   (see [`DexProcess::recycle`]) and handed to the next slot that opens.
//!   Decided slots keep participating until they retire: the lag of one
//!   full window preserves the paper's "keep echoing after deciding"
//!   obligation for every peer still inside the window.
//! * **Retired traffic**: a message for a retired slot is, by construction,
//!   a message for a slot in this replica's committed prefix. The mux
//!   reports it as such so the replica can answer with a targeted
//!   catch-up reply instead of resurrecting the instance.

use dex_conditions::FrequencyPair;
use dex_core::DexProcess;
use dex_types::{ProcessId, SystemConfig, Value};
use dex_underlying::OracleConsensus;
use std::collections::HashMap;

/// One slot's consensus machine: DEX over the frequency-based condition
/// with the oracle underlying consensus.
pub type SlotInstance<C> = DexProcess<C, FrequencyPair, OracleConsensus<C>>;

/// What [`SlotMux::checkout`] did to produce the instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Checkout {
    /// The slot was already live.
    Live,
    /// A fresh instance was allocated.
    Allocated,
    /// A retired instance was recycled; carries the slot it last served.
    Recycled(u64),
}

/// The slot-routing and instance-recycling layer (see the module docs).
pub struct SlotMux<C: Value> {
    config: SystemConfig,
    me: ProcessId,
    coordinator: ProcessId,
    /// Pipeline window `W`: how many slots may be in flight past the
    /// committed floor. `1` reproduces sequential replication exactly.
    window: u64,
    /// Live instances, keyed by slot.
    active: HashMap<u64, SlotInstance<C>>,
    /// Reset instances ready for reuse, tagged with the slot they served.
    pool: Vec<(u64, SlotInstance<C>)>,
    /// Slots below this line are retired: committed locally and no longer
    /// served by a live instance. Always `0` when `window == 1`.
    retire_floor: u64,
    /// How many checkouts were served from the pool (diagnostics/bench).
    recycled: u64,
    /// How many instances were ever allocated (diagnostics/bench).
    allocated: u64,
}

impl<C: Value> SlotMux<C> {
    /// Creates a sequential (`window = 1`) mux.
    pub fn new(config: SystemConfig, me: ProcessId, coordinator: ProcessId) -> Self {
        SlotMux {
            config,
            me,
            coordinator,
            window: 1,
            active: HashMap::new(),
            pool: Vec::new(),
            retire_floor: 0,
            recycled: 0,
            allocated: 0,
        }
    }

    /// Sets the pipeline window (`≥ 1`). With `window == 1` the mux
    /// never retires instances — byte-for-byte the pre-pipeline engine.
    pub fn set_window(&mut self, window: u64) {
        assert!(window >= 1, "pipeline window must be at least 1");
        self.window = window;
    }

    /// The configured window.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Slots below this line are retired (committed and recycled).
    pub fn retire_floor(&self) -> u64 {
        self.retire_floor
    }

    /// Whether `slot` has been retired into the pool.
    pub fn is_retired(&self, slot: u64) -> bool {
        slot < self.retire_floor
    }

    /// Instances recycled from the pool so far.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Instances allocated from scratch so far.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Number of currently live instances.
    pub fn live(&self) -> usize {
        self.active.len()
    }

    /// Routes `slot` to its instance, creating one on demand — from the
    /// recycling pool when possible, freshly allocated otherwise.
    pub fn checkout(&mut self, slot: u64) -> (&mut SlotInstance<C>, Checkout) {
        let (config, me, coordinator) = (self.config, self.me, self.coordinator);
        let mut how = Checkout::Live;
        let instance = self.active.entry(slot).or_insert_with(|| {
            if let Some((freed, mut instance)) = self.pool.pop() {
                self.recycled += 1;
                how = Checkout::Recycled(freed);
                // The UC machine is small; recycling swaps in a fresh one
                // while every tally/witness allocation is reset in place.
                let _ = instance.recycle(OracleConsensus::new(config, me, coordinator));
                instance
            } else {
                self.allocated += 1;
                how = Checkout::Allocated;
                DexProcess::new(
                    config,
                    me,
                    FrequencyPair::new(config).expect("n > 6t checked by cluster builder"),
                    OracleConsensus::new(config, me, coordinator),
                )
            }
        });
        (instance, how)
    }

    /// Slides the retirement line up to `floor` (callers pass the committed
    /// floor minus the window): every live instance strictly below it is
    /// reset and returned to the pool. No-op while `window == 1`.
    pub fn retire_below(&mut self, floor: u64) {
        if self.window <= 1 || floor <= self.retire_floor {
            return;
        }
        // Bounded scan: the live set holds at most a couple of windows.
        let retiring: Vec<u64> = self.active.keys().copied().filter(|s| *s < floor).collect();
        for slot in retiring {
            let instance = self.active.remove(&slot).expect("listed above");
            self.pool.push((slot, instance));
        }
        self.retire_floor = floor;
    }

    /// Forgets all live and pooled instances (restart-with-amnesia).
    pub fn clear(&mut self) {
        self.active.clear();
        self.pool.clear();
        self.retire_floor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_types::Dest;
    use dex_underlying::Outbox;
    use rand::rngs::StdRng;

    fn cfg() -> SystemConfig {
        SystemConfig::new(7, 1).unwrap()
    }

    fn mux() -> SlotMux<u64> {
        SlotMux::new(cfg(), ProcessId::new(1), ProcessId::new(0))
    }

    #[test]
    fn sequential_mux_never_retires() {
        let mut m = mux();
        for slot in 0..10 {
            let (_, how) = m.checkout(slot);
            assert_eq!(how, Checkout::Allocated);
        }
        m.retire_below(8);
        assert_eq!(m.retire_floor(), 0, "window 1 keeps every instance live");
        assert_eq!(m.live(), 10);
        assert_eq!(m.recycled(), 0);
    }

    #[test]
    fn windowed_mux_recycles_retired_instances() {
        let mut m = mux();
        m.set_window(4);
        for slot in 0..4 {
            let (_, how) = m.checkout(slot);
            assert_eq!(how, Checkout::Allocated);
        }
        m.retire_below(2);
        assert!(m.is_retired(0) && m.is_retired(1));
        assert_eq!(m.live(), 2);
        // The next two checkouts drain the pool before allocating.
        let (_, how) = m.checkout(4);
        assert!(matches!(how, Checkout::Recycled(_)));
        let (_, how) = m.checkout(5);
        assert!(matches!(how, Checkout::Recycled(_)));
        let (_, how) = m.checkout(6);
        assert_eq!(how, Checkout::Allocated);
        assert_eq!(m.recycled(), 2);
        assert_eq!(m.allocated(), 5);
    }

    #[test]
    fn recycled_instance_state_is_fresh() {
        let mut m = mux();
        m.set_window(2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut out = Outbox::new();
        {
            let (instance, _) = m.checkout(0);
            instance.propose(41, &mut rng, &mut out);
            assert!(instance.decision().is_none());
        }
        m.retire_below(1);
        let (instance, how) = m.checkout(1);
        assert_eq!(how, Checkout::Recycled(0));
        // A recycled machine accepts a fresh proposal: its `proposed` flag,
        // views and gates were all reset.
        let mut out2 = Outbox::new();
        instance.propose(42, &mut rng, &mut out2);
        let sends = out2.drain();
        assert!(
            sends.iter().any(|(d, _)| *d == Dest::All),
            "recycled instance must re-broadcast"
        );
    }
}
