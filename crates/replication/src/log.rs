//! The slot-indexed replicated log.

use dex_types::Value;

/// What [`ReplicatedLog::commit`] did with the offered decision.
///
/// Re-commits happen legitimately — a restarted replica replays its WAL
/// into a log that partially overlaps what catch-up already adopted — so
/// duplicates must be distinguishable from first-time commits, and a
/// *conflicting* re-commit (an agreement violation) must never be silently
/// papered over.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[must_use = "a Conflict outcome is an agreement violation and must be handled"]
pub enum CommitOutcome {
    /// The slot was empty and now holds the value.
    Committed,
    /// The slot already held exactly this value; nothing changed.
    Duplicate,
    /// The slot already held a **different** value. The original value is
    /// kept; debug builds panic at the commit site instead of returning
    /// this.
    Conflict,
}

impl CommitOutcome {
    /// Whether the slot's value changed (first-time commit).
    pub fn is_new(self) -> bool {
        self == CommitOutcome::Committed
    }
}

/// A commit log: slot `s` holds the command consensus instance `s` decided.
/// Slots may commit out of order (instances run concurrently); commands are
/// *applied* strictly in order via [`next_applicable`](Self::next_applicable).
///
/// # Examples
///
/// ```
/// use dex_replication::{CommitOutcome, ReplicatedLog};
/// let mut log: ReplicatedLog<u64> = ReplicatedLog::new();
/// // Slot 1 decides before slot 0.
/// assert_eq!(log.commit(1, 20), CommitOutcome::Committed);
/// assert_eq!(log.next_applicable(), None);
/// assert_eq!(log.commit(0, 10), CommitOutcome::Committed);
/// assert_eq!(log.next_applicable(), Some(&10));
/// assert_eq!(log.commit(0, 10), CommitOutcome::Duplicate);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReplicatedLog<V> {
    slots: Vec<Option<V>>,
    applied: usize,
    /// Cached length of the contiguous committed prefix. The pipelined
    /// proposer reads the floor after every commit, so this is maintained
    /// incrementally instead of rescanned.
    prefix: usize,
}

impl<V: Value> Default for ReplicatedLog<V> {
    fn default() -> Self {
        ReplicatedLog {
            slots: Vec::new(),
            applied: 0,
            prefix: 0,
        }
    }
}

impl<V: Value> ReplicatedLog<V> {
    /// Creates an empty log.
    pub fn new() -> Self {
        ReplicatedLog::default()
    }

    /// Records the decision of slot `slot` and reports what happened.
    ///
    /// A matching re-commit is a harmless [`CommitOutcome::Duplicate`]; a
    /// conflicting one keeps the original value and returns
    /// [`CommitOutcome::Conflict`] — in debug builds it panics instead,
    /// because a conflict is an agreement violation and the blast site is
    /// the most useful place to stop.
    pub fn commit(&mut self, slot: usize, value: V) -> CommitOutcome {
        if self.slots.len() <= slot {
            self.slots.resize(slot + 1, None);
        }
        match &self.slots[slot] {
            Some(existing) if *existing == value => CommitOutcome::Duplicate,
            Some(existing) => {
                debug_assert_eq!(
                    existing, &value,
                    "slot {slot} double-committed with different values"
                );
                CommitOutcome::Conflict
            }
            None => {
                self.slots[slot] = Some(value);
                while self.prefix < self.slots.len() && self.slots[self.prefix].is_some() {
                    self.prefix += 1;
                }
                CommitOutcome::Committed
            }
        }
    }

    /// Whether `slot` has committed.
    pub fn is_committed(&self, slot: usize) -> bool {
        self.slots.get(slot).is_some_and(Option::is_some)
    }

    /// The committed value of `slot`, if any.
    pub fn get(&self, slot: usize) -> Option<&V> {
        self.slots.get(slot).and_then(Option::as_ref)
    }

    /// Number of committed slots in the contiguous prefix. O(1) — the
    /// cursor is advanced incrementally on commit.
    pub fn committed_prefix(&self) -> usize {
        debug_assert_eq!(
            self.prefix,
            self.slots.iter().take_while(|s| s.is_some()).count()
        );
        self.prefix
    }

    /// Number of slots applied to the state machine so far.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// The next command ready to apply in order, if its slot committed.
    /// Call [`mark_applied`](Self::mark_applied) after applying it.
    pub fn next_applicable(&self) -> Option<&V> {
        self.slots.get(self.applied).and_then(Option::as_ref)
    }

    /// Advances the applied cursor.
    ///
    /// # Panics
    ///
    /// Panics if the current slot has not committed yet.
    pub fn mark_applied(&mut self) {
        assert!(
            self.is_committed(self.applied),
            "cannot apply an uncommitted slot"
        );
        self.applied += 1;
    }

    /// The contiguous committed prefix as a vector (for cross-replica
    /// comparison).
    pub fn prefix(&self) -> Vec<V> {
        self.slots
            .iter()
            .take_while(|s| s.is_some())
            .map(|s| s.clone().expect("prefix is committed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_commit_in_order_apply() {
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new();
        assert_eq!(log.commit(2, 30), CommitOutcome::Committed);
        assert_eq!(log.committed_prefix(), 0);
        assert_eq!(log.next_applicable(), None);
        assert_eq!(log.commit(0, 10), CommitOutcome::Committed);
        assert_eq!(log.commit(1, 20), CommitOutcome::Committed);
        assert_eq!(log.committed_prefix(), 3);
        assert_eq!(log.next_applicable(), Some(&10));
        log.mark_applied();
        assert_eq!(log.next_applicable(), Some(&20));
        log.mark_applied();
        log.mark_applied();
        assert_eq!(log.applied(), 3);
        assert_eq!(log.next_applicable(), None);
        assert_eq!(log.prefix(), vec![10, 20, 30]);
    }

    #[test]
    fn idempotent_recommit_is_fine() {
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new();
        assert!(log.commit(0, 5).is_new());
        assert_eq!(log.commit(0, 5), CommitOutcome::Duplicate);
        assert_eq!(log.get(0), Some(&5));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "double-committed")]
    fn conflicting_recommit_panics() {
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new();
        let _ = log.commit(0, 5);
        let _ = log.commit(0, 6);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn conflicting_recommit_keeps_the_original_and_reports_it() {
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new();
        let _ = log.commit(0, 5);
        assert_eq!(log.commit(0, 6), CommitOutcome::Conflict);
        assert_eq!(log.get(0), Some(&5), "original value wins");
    }

    #[test]
    #[should_panic(expected = "uncommitted")]
    fn premature_apply_panics() {
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new();
        log.mark_applied();
    }
}
