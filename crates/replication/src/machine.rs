//! The state-machine abstraction replicated by the cluster.

use crate::command::Command;
use crate::kvstore::KvStore;
use dex_types::Value;

/// A deterministic state machine driven by totally-ordered commands.
///
/// Determinism is the whole contract: identical command sequences must
/// yield identical [`digest`](Self::digest)s on every replica. The default
/// command (`Default`) is the "empty slot" proposal used when a replica's
/// request queue is dry. `Clone` is required so the durability layer can
/// capture point-in-time snapshots of the applied state (see `wal`).
pub trait StateMachine: Default + Clone + Send + 'static {
    /// The replicated operation type.
    type Command: Value + Default;

    /// Applies one committed command.
    fn apply(&mut self, cmd: &Self::Command);

    /// An order-sensitive digest of the current state.
    fn digest(&self) -> u64;
}

impl StateMachine for KvStore {
    type Command = Command;

    fn apply(&mut self, cmd: &Command) {
        KvStore::apply(self, *cmd);
    }

    fn digest(&self) -> u64 {
        KvStore::digest(self)
    }
}

/// The *atomic broadcast* state machine: it just records the delivery
/// order. Running the cluster with this machine **is** total-order
/// broadcast — one of the "practical agreement problems" the paper's
/// introduction says consensus implements: every correct replica delivers
/// the same payload sequence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TotalOrder<V> {
    delivered: Vec<V>,
}

impl<V> Default for TotalOrder<V> {
    fn default() -> Self {
        TotalOrder {
            delivered: Vec::new(),
        }
    }
}

impl<V: Value> TotalOrder<V> {
    /// The payloads delivered so far, in delivery order.
    pub fn delivered(&self) -> &[V] {
        &self.delivered
    }
}

impl<V: Value + Default + std::hash::Hash> StateMachine for TotalOrder<V> {
    type Command = V;

    fn apply(&mut self, cmd: &V) {
        self.delivered.push(cmd.clone());
    }

    fn digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.delivered.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kvstore_is_a_state_machine() {
        let mut sm = KvStore::default();
        StateMachine::apply(&mut sm, &Command::put(1, 2));
        assert_eq!(sm.get(1), Some(2));
        assert_ne!(StateMachine::digest(&sm), KvStore::default().digest());
    }

    #[test]
    fn total_order_records_sequences() {
        let mut a: TotalOrder<u64> = TotalOrder::default();
        let mut b: TotalOrder<u64> = TotalOrder::default();
        for x in [3u64, 1, 2] {
            a.apply(&x);
        }
        for x in [1u64, 3, 2] {
            b.apply(&x);
        }
        assert_eq!(a.delivered(), &[3, 1, 2]);
        assert_ne!(a.digest(), b.digest(), "order matters");
    }
}
