//! Durable replica storage: an append-only write-ahead log with explicit
//! fsync points, plus point-in-time snapshots of the applied state.
//!
//! The crash model is the classic one: everything in volatile memory is
//! lost, everything **synced** to the log survives, and records appended
//! but not yet synced may vanish. [`Wal::crash`] models exactly that
//! boundary, so recovery code can be tested against the worst case (the
//! unsynced tail is always lost) without an actual `kill -9`.
//!
//! A [`Snapshot`] captures the applied state machine together with the
//! exact command prefix that produced it; [`Durability`] combines the two,
//! compacting the log whenever a new snapshot subsumes old records.
//! [`Replica::restore`](crate::Replica) replays snapshot + WAL after a
//! [`CrashMode::Restart`](dex_simnet::CrashMode) window and re-derives a
//! committed prefix byte-identical to what it had persisted before dying.

use crate::log::ReplicatedLog;
use crate::machine::StateMachine;
use crate::Command;
use dex_types::Value;
use std::io::Write as _;
use std::path::PathBuf;

/// One durable record: slot `slot` decided `value`.
///
/// A single variant today; an enum so future records (view changes,
/// reconfigurations) extend the format instead of replacing it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalRecord<C> {
    /// Consensus instance `slot` committed `value` at this replica.
    Commit {
        /// The log slot.
        slot: u64,
        /// The committed command.
        value: C,
    },
}

/// An append-only write-ahead log with explicit fsync points.
///
/// [`append`](Wal::append) only buffers; [`sync`](Wal::sync) is the fsync
/// point that makes buffered records durable. [`crash`](Wal::crash)
/// simulates the process dying: the buffered-but-unsynced tail vanishes,
/// the synced prefix survives.
pub trait Wal<C>: Send {
    /// Buffers one record (volatile until the next [`sync`](Wal::sync)).
    fn append(&mut self, record: WalRecord<C>);

    /// Fsync point: makes every buffered record durable, in append order.
    fn sync(&mut self);

    /// The durable records, in append order (buffered records excluded —
    /// they would not survive a crash, so recovery must not see them).
    fn replay(&self) -> Vec<WalRecord<C>>;

    /// Replaces the entire durable content with `retain` (synced). Called
    /// after a snapshot subsumes the records before it.
    fn compact(&mut self, retain: Vec<WalRecord<C>>);

    /// Simulates the process dying: drops the unsynced tail. Durable
    /// records are untouched.
    fn crash(&mut self);
}

/// In-memory [`Wal`]: models the durable/volatile boundary without
/// touching the filesystem — the simulator's default backing store.
#[derive(Clone, Debug, Default)]
pub struct MemWal<C> {
    durable: Vec<WalRecord<C>>,
    buffered: Vec<WalRecord<C>>,
    syncs: u64,
}

impl<C> MemWal<C> {
    /// Creates an empty log.
    pub fn new() -> Self {
        MemWal {
            durable: Vec::new(),
            buffered: Vec::new(),
            syncs: 0,
        }
    }

    /// Number of appended-but-unsynced records (would be lost by a crash).
    pub fn unsynced_len(&self) -> usize {
        self.buffered.len()
    }

    /// Number of fsync points so far.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

impl<C: Value> Wal<C> for MemWal<C> {
    fn append(&mut self, record: WalRecord<C>) {
        self.buffered.push(record);
    }

    fn sync(&mut self) {
        self.durable.append(&mut self.buffered);
        self.syncs += 1;
    }

    fn replay(&self) -> Vec<WalRecord<C>> {
        self.durable.clone()
    }

    fn compact(&mut self, retain: Vec<WalRecord<C>>) {
        self.durable = retain;
        self.buffered.clear();
    }

    fn crash(&mut self) {
        self.buffered.clear();
    }
}

/// Line codec for commands stored in a [`FileWal`].
///
/// Hand-rolled (no serde in the dependency tree, and the format must stay
/// byte-stable): one record per line, so an encoding must not contain
/// `'\n'`. `decode` is total — corrupt lines yield `None` and recovery
/// stops at the first undecodable record, which is exactly the torn-tail
/// semantics of a real log.
pub trait WalCodec: Sized {
    /// Encodes the command as a single line fragment (no newlines).
    fn encode(&self) -> String;

    /// Decodes what [`encode`](WalCodec::encode) produced.
    fn decode(s: &str) -> Option<Self>;
}

impl WalCodec for Command {
    fn encode(&self) -> String {
        match self {
            Command::Noop => "noop".to_string(),
            Command::Delete { key } => format!("del {key}"),
            Command::Put { key, value } => format!("put {key} {value}"),
            Command::Add { key, delta } => format!("add {key} {delta}"),
        }
    }

    fn decode(s: &str) -> Option<Self> {
        let mut parts = s.split(' ');
        let cmd = match (parts.next()?, parts.next(), parts.next()) {
            ("noop", None, None) => Command::Noop,
            ("del", Some(k), None) => Command::delete(k.parse().ok()?),
            ("put", Some(k), Some(v)) => Command::put(k.parse().ok()?, v.parse().ok()?),
            ("add", Some(k), Some(d)) => Command::add(k.parse().ok()?, d.parse().ok()?),
            _ => return None,
        };
        parts.next().is_none().then_some(cmd)
    }
}

impl WalCodec for u64 {
    fn encode(&self) -> String {
        self.to_string()
    }

    fn decode(s: &str) -> Option<Self> {
        s.parse().ok()
    }
}

/// File-backed [`Wal`]: one `c <slot> <command>` line per record;
/// [`sync`](Wal::sync) flushes buffered lines and calls `fsync`.
///
/// The simulator runs on [`MemWal`]; this impl exists to pin the
/// abstraction to a real durable medium (and is what a deployment would
/// use), with the same buffered/synced semantics.
#[derive(Debug)]
pub struct FileWal<C> {
    path: PathBuf,
    buffered: Vec<WalRecord<C>>,
}

impl<C: Value + WalCodec> FileWal<C> {
    /// Opens (or creates) the log at `path`.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(FileWal {
            path,
            buffered: Vec::new(),
        })
    }

    fn encode_record(record: &WalRecord<C>) -> String {
        match record {
            WalRecord::Commit { slot, value } => format!("c {slot} {}\n", value.encode()),
        }
    }

    fn decode_record(line: &str) -> Option<WalRecord<C>> {
        let rest = line.strip_prefix("c ")?;
        let (slot, value) = rest.split_once(' ')?;
        Some(WalRecord::Commit {
            slot: slot.parse().ok()?,
            value: C::decode(value)?,
        })
    }
}

impl<C: Value + WalCodec> Wal<C> for FileWal<C> {
    fn append(&mut self, record: WalRecord<C>) {
        self.buffered.push(record);
    }

    fn sync(&mut self) {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .expect("wal file vanished");
        for record in self.buffered.drain(..) {
            file.write_all(Self::encode_record(&record).as_bytes())
                .expect("wal append failed");
        }
        file.sync_all().expect("wal fsync failed");
    }

    fn replay(&self) -> Vec<WalRecord<C>> {
        let Ok(content) = std::fs::read_to_string(&self.path) else {
            return Vec::new();
        };
        let mut records = Vec::new();
        for line in content.lines() {
            // Torn-tail semantics: stop at the first undecodable record.
            match Self::decode_record(line) {
                Some(r) => records.push(r),
                None => break,
            }
        }
        records
    }

    fn compact(&mut self, retain: Vec<WalRecord<C>>) {
        let mut content = String::new();
        for record in &retain {
            content.push_str(&Self::encode_record(record));
        }
        std::fs::write(&self.path, content).expect("wal rewrite failed");
        let file = std::fs::File::open(&self.path).expect("wal file vanished");
        file.sync_all().expect("wal fsync failed");
        self.buffered.clear();
    }

    fn crash(&mut self) {
        self.buffered.clear();
    }
}

/// A point-in-time image of the applied state: the machine **plus** the
/// exact applied command prefix, so a restore can re-derive a log prefix
/// byte-identical to the original (the machine alone cannot — digests are
/// one-way).
#[derive(Clone, Debug)]
pub struct Snapshot<SM: StateMachine> {
    /// The state machine after applying `prefix` in order.
    pub machine: SM,
    /// The applied commands, in slot order (`prefix.len()` = applied
    /// cursor at capture time).
    pub prefix: Vec<SM::Command>,
}

/// A replica's "disk": WAL + latest snapshot + the snapshot cadence.
///
/// Every committed slot is appended **and synced** before the commit is
/// acted on (commit points are fsync points — the conservative policy, and
/// the one that makes restart recovery exact). Snapshots are taken every
/// `snapshot_every` applied slots; each snapshot compacts the WAL down to
/// the records it does not subsume (out-of-order commits above the applied
/// prefix).
pub struct Durability<SM: StateMachine> {
    wal: Box<dyn Wal<SM::Command>>,
    snapshot: Option<Snapshot<SM>>,
    snapshot_every: usize,
}

impl<SM: StateMachine> Durability<SM> {
    /// Wraps a WAL backing store; `snapshot_every = 0` disables snapshots
    /// (recovery replays the full log).
    pub fn new(wal: Box<dyn Wal<SM::Command>>, snapshot_every: usize) -> Self {
        Durability {
            wal,
            snapshot: None,
            snapshot_every,
        }
    }

    /// In-memory store with the default snapshot cadence — what simulated
    /// clusters use.
    pub fn mem(snapshot_every: usize) -> Self {
        Durability::new(Box::new(MemWal::new()), snapshot_every)
    }

    /// The latest snapshot, if one has been taken.
    pub fn snapshot(&self) -> Option<&Snapshot<SM>> {
        self.snapshot.as_ref()
    }

    /// Persists one committed slot: append + fsync.
    pub fn log_commit(&mut self, slot: u64, value: SM::Command) {
        self.wal.append(WalRecord::Commit { slot, value });
        self.wal.sync();
    }

    /// Takes a snapshot if the cadence is due, compacting the WAL down to
    /// the records above the applied prefix.
    pub fn maybe_snapshot(&mut self, log: &ReplicatedLog<SM::Command>, machine: &SM) {
        if self.snapshot_every == 0 {
            return;
        }
        let applied = log.applied();
        let covered = self.snapshot.as_ref().map_or(0, |s| s.prefix.len());
        if applied - covered < self.snapshot_every {
            return;
        }
        let mut prefix = log.prefix();
        prefix.truncate(applied);
        self.snapshot = Some(Snapshot {
            machine: machine.clone(),
            prefix,
        });
        let retain = self
            .wal
            .replay()
            .into_iter()
            .filter(|WalRecord::Commit { slot, .. }| *slot >= applied as u64)
            .collect();
        self.wal.compact(retain);
    }

    /// Crash-recovers the store: the unsynced WAL tail is lost, and the
    /// surviving state — latest snapshot plus durable records — is
    /// returned for replay.
    pub fn recover(&mut self) -> (Option<Snapshot<SM>>, Vec<WalRecord<SM::Command>>) {
        self.wal.crash();
        (self.snapshot.clone(), self.wal.replay())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvStore;

    #[test]
    fn mem_wal_loses_the_unsynced_tail_on_crash() {
        let mut wal: MemWal<u64> = MemWal::new();
        wal.append(WalRecord::Commit { slot: 0, value: 10 });
        wal.sync();
        wal.append(WalRecord::Commit { slot: 1, value: 20 });
        assert_eq!(wal.unsynced_len(), 1);
        assert_eq!(wal.replay().len(), 1, "unsynced records are not durable");
        wal.crash();
        assert_eq!(wal.replay(), vec![WalRecord::Commit { slot: 0, value: 10 }]);
        assert_eq!(wal.unsynced_len(), 0);
    }

    #[test]
    fn command_codec_round_trips() {
        for cmd in [
            Command::Noop,
            Command::put(7, 70),
            Command::add(3, 9),
            Command::delete(12),
        ] {
            assert_eq!(Command::decode(&cmd.encode()), Some(cmd), "{cmd}");
        }
        assert_eq!(Command::decode("frobnicate 1 2"), None);
        assert_eq!(Command::decode("put 1"), None);
        assert_eq!(Command::decode("noop 3"), None);
    }

    #[test]
    fn file_wal_survives_reopen_and_stops_at_a_torn_tail() {
        let path = std::env::temp_dir().join(format!(
            "dex-wal-test-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut wal: FileWal<Command> = FileWal::open(&path).unwrap();
            wal.append(WalRecord::Commit {
                slot: 0,
                value: Command::put(1, 10),
            });
            wal.append(WalRecord::Commit {
                slot: 1,
                value: Command::add(1, 5),
            });
            wal.sync();
            wal.append(WalRecord::Commit {
                slot: 2,
                value: Command::delete(1),
            });
            // Never synced — a crash (process exit) loses slot 2.
        }
        {
            let wal: FileWal<Command> = FileWal::open(&path).unwrap();
            assert_eq!(
                wal.replay(),
                vec![
                    WalRecord::Commit {
                        slot: 0,
                        value: Command::put(1, 10)
                    },
                    WalRecord::Commit {
                        slot: 1,
                        value: Command::add(1, 5)
                    },
                ]
            );
        }
        // A torn write at the tail must not poison the decodable prefix.
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"c 2 pu").unwrap();
        }
        {
            let wal: FileWal<Command> = FileWal::open(&path).unwrap();
            assert_eq!(wal.replay().len(), 2, "torn tail ignored");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn durability_snapshots_and_compacts() {
        let mut log: ReplicatedLog<Command> = ReplicatedLog::new();
        let mut machine = KvStore::default();
        let mut d: Durability<KvStore> = Durability::mem(2);

        // Commit slots 0..3 in order, applying as we go; slot 5 commits
        // out of order and stays above the applied prefix.
        for (slot, cmd) in [(0, Command::put(1, 10)), (1, Command::put(2, 20))] {
            let _ = log.commit(slot, cmd);
            d.log_commit(slot as u64, cmd);
        }
        let _ = log.commit(5, Command::put(9, 90));
        d.log_commit(5, Command::put(9, 90));
        while let Some(cmd) = log.next_applicable().copied() {
            machine.apply(cmd);
            log.mark_applied();
        }
        d.maybe_snapshot(&log, &machine);

        let snap = d.snapshot().expect("cadence of 2 reached");
        assert_eq!(snap.prefix, vec![Command::put(1, 10), Command::put(2, 20)]);
        assert_eq!(snap.machine.digest(), machine.digest());

        // The WAL kept only the record the snapshot does not subsume.
        let (snapshot, records) = d.recover();
        assert!(snapshot.is_some());
        assert_eq!(
            records,
            vec![WalRecord::Commit {
                slot: 5,
                value: Command::put(9, 90)
            }]
        );
    }

    #[test]
    fn recovery_rederives_an_identical_log() {
        let mut log: ReplicatedLog<u64> = ReplicatedLog::new();
        let mut machine = crate::TotalOrder::<u64>::default();
        let mut d: Durability<crate::TotalOrder<u64>> = Durability::mem(3);
        for (slot, v) in [(0u64, 100u64), (2, 300), (1, 200), (3, 400), (6, 700)] {
            let _ = log.commit(slot as usize, v);
            d.log_commit(slot, v);
            while let Some(x) = log.next_applicable().copied() {
                use crate::StateMachine as _;
                machine.apply(&x);
                log.mark_applied();
            }
            d.maybe_snapshot(&log, &machine);
        }

        // Rebuild from scratch: snapshot prefix, then WAL replay.
        let (snapshot, records) = d.recover();
        let mut rebuilt: ReplicatedLog<u64> = ReplicatedLog::new();
        let mut remachine = crate::TotalOrder::<u64>::default();
        if let Some(snap) = snapshot {
            for (i, v) in snap.prefix.iter().enumerate() {
                let _ = rebuilt.commit(i, *v);
            }
            for _ in 0..snap.prefix.len() {
                rebuilt.mark_applied();
            }
            remachine = snap.machine;
        }
        for WalRecord::Commit { slot, value } in records {
            let _ = rebuilt.commit(slot as usize, value);
        }
        while let Some(x) = rebuilt.next_applicable().copied() {
            use crate::StateMachine as _;
            remachine.apply(&x);
            rebuilt.mark_applied();
        }
        assert_eq!(rebuilt.prefix(), log.prefix());
        assert_eq!(rebuilt.applied(), log.applied());
        use crate::StateMachine as _;
        assert_eq!(remachine.digest(), machine.digest());
    }
}
