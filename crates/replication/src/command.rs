//! Replicated commands.

use core::fmt;

/// An operation on the replicated key-value store.
///
/// Commands are DEX proposal values, so they carry the full
/// [`Value`](dex_types::Value) trait bundle (ordered, hashable, cloneable).
/// `Noop` exists so a replica with an empty request queue can still
/// propose something for a slot (consensus needs a value from everyone).
///
/// # Examples
///
/// ```
/// use dex_replication::Command;
/// let c = Command::put(3, 99);
/// assert_eq!(c.to_string(), "put(3=99)");
/// assert!(Command::Noop < c);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Command {
    /// Do nothing (empty slot).
    #[default]
    Noop,
    /// Delete a key.
    Delete {
        /// The key to remove.
        key: u64,
    },
    /// Write `value` under `key`.
    Put {
        /// The key.
        key: u64,
        /// The value.
        value: u64,
    },
    /// Add `delta` to the value under `key` (missing keys count as 0) —
    /// a non-commutative-with-Put operation, so ordering mistakes between
    /// replicas are visible in the digest.
    Add {
        /// The key.
        key: u64,
        /// The increment.
        delta: u64,
    },
}

impl Command {
    /// Convenience constructor for [`Command::Put`].
    pub const fn put(key: u64, value: u64) -> Self {
        Command::Put { key, value }
    }

    /// Convenience constructor for [`Command::Add`].
    pub const fn add(key: u64, delta: u64) -> Self {
        Command::Add { key, delta }
    }

    /// Convenience constructor for [`Command::Delete`].
    pub const fn delete(key: u64) -> Self {
        Command::Delete { key }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Noop => write!(f, "noop"),
            Command::Delete { key } => write!(f, "del({key})"),
            Command::Put { key, value } => write!(f, "put({key}={value})"),
            Command::Add { key, delta } => write!(f, "add({key}+={delta})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_are_consensus_values() {
        fn assert_value<V: dex_types::Value>() {}
        assert_value::<Command>();
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Command::Noop.to_string(), "noop");
        assert_eq!(Command::put(1, 2).to_string(), "put(1=2)");
        assert_eq!(Command::add(1, 2).to_string(), "add(1+=2)");
        assert_eq!(Command::delete(7).to_string(), "del(7)");
    }

    #[test]
    fn default_is_noop() {
        assert_eq!(Command::default(), Command::Noop);
    }
}
