//! Edge paths of the DEX state machine: participation before proposing
//! (late joiners), Byzantine double-inits, UC decisions racing the views,
//! and decision stability.

use dex_broadcast::IdbMessage;
use dex_conditions::FrequencyPair;
use dex_core::{DecisionPath, DexMsg, DexProcess};
use dex_types::{ProcessId, SystemConfig};
use dex_underlying::{OracleConsensus, OracleMsg, Outbox};
use rand::rngs::StdRng;

type Proc = DexProcess<u64, FrequencyPair, OracleConsensus<u64>>;
type Out = Outbox<DexMsg<u64, OracleMsg<u64>>>;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn proc(me: usize) -> Proc {
    let cfg = SystemConfig::new(7, 1).unwrap();
    DexProcess::new(
        cfg,
        p(me),
        FrequencyPair::new(cfg).unwrap(),
        OracleConsensus::new(cfg, p(me), p(0)),
    )
}

fn rng() -> StdRng {
    StdRng::seed_from_u64(0)
}

/// Feed a complete IDB exchange (echoes from everyone) for `origin`.
fn idb_all_echoes(
    proc_: &mut Proc,
    origin: usize,
    v: u64,
    out: &mut Out,
) -> Option<dex_core::Decision<u64>> {
    let mut decision = None;
    for echoer in 0..7 {
        if let Some(d) = proc_.on_message(
            p(echoer),
            &DexMsg::Idb(IdbMessage::Echo {
                key: p(origin),
                value: v,
            }),
            &mut rng(),
            out,
        ) {
            decision = Some(d);
        }
    }
    decision
}

#[test]
fn messages_before_propose_are_processed() {
    // A late-joining process (e.g. a replica that has not yet proposed for
    // this slot) must still build views from incoming traffic.
    let mut pr = proc(0);
    let mut out: Out = Outbox::new();
    for j in 1..7 {
        pr.on_message(p(j), &DexMsg::Proposal(5), &mut rng(), &mut out);
    }
    // 6 entries without our own: quorum reached, P1 margin 6 > 4.
    let d = pr.decision().expect("decided before proposing");
    assert_eq!(d.value, 5);
    assert_eq!(d.path, DecisionPath::OneStep);
    // Proposing afterwards still works and does not re-decide.
    pr.propose(9, &mut rng(), &mut out);
    assert_eq!(pr.decision().unwrap().value, 5);
}

#[test]
fn two_step_channel_works_without_own_proposal() {
    let mut pr = proc(0);
    let mut out: Out = Outbox::new();
    for origin in 1..7 {
        idb_all_echoes(&mut pr, origin, 4, &mut out);
    }
    let d = pr.decision().expect("P2 fires on 6 delivered entries");
    assert_eq!(d.path, DecisionPath::TwoStep);
    // The UC proposal also fired (lines 12–15 are unconditional).
    assert!(pr.uc_proposed());
}

#[test]
fn byzantine_double_init_cannot_corrupt_j2() {
    // A faulty origin sends two different inits; IDB's first-echo guard
    // means only one gains our echo, and only a quorum-backed value can
    // deliver. Feed echoes for both values from disjoint witness sets that
    // are each below quorum: nothing delivers.
    let mut pr = proc(0);
    let mut out: Out = Outbox::new();
    for echoer in 1..4 {
        pr.on_message(
            p(echoer),
            &DexMsg::Idb(IdbMessage::Echo {
                key: p(6),
                value: 1,
            }),
            &mut rng(),
            &mut out,
        );
    }
    for echoer in 4..7 {
        pr.on_message(
            p(echoer),
            &DexMsg::Idb(IdbMessage::Echo {
                key: p(6),
                value: 2,
            }),
            &mut rng(),
            &mut out,
        );
    }
    assert_eq!(pr.j2().get(p(6)), None, "split witnesses never deliver");
}

#[test]
fn uc_decide_before_any_view_quorum() {
    // The fallback can race ahead of both views (e.g. under targeted
    // delays); the process adopts it and stays consistent.
    let mut pr = proc(3);
    let mut out: Out = Outbox::new();
    pr.propose(5, &mut rng(), &mut out);
    let d = pr
        .on_message(
            p(0),
            &DexMsg::Uc(OracleMsg::Decide(8)),
            &mut rng(),
            &mut out,
        )
        .expect("adopt UC decision");
    assert_eq!(d.path, DecisionPath::Underlying);
    // Later view completions do not override it.
    for j in 1..7 {
        pr.on_message(p(j), &DexMsg::Proposal(5), &mut rng(), &mut out);
    }
    assert_eq!(pr.decision().unwrap().value, 8);
}

#[test]
fn forged_uc_decide_is_ignored() {
    let mut pr = proc(3); // oracle coordinator is p0
    let mut out: Out = Outbox::new();
    pr.propose(5, &mut rng(), &mut out);
    assert!(pr
        .on_message(
            p(6),
            &DexMsg::Uc(OracleMsg::Decide(666)),
            &mut rng(),
            &mut out
        )
        .is_none());
    assert!(pr.decision().is_none());
}

#[test]
fn uc_proposal_fires_exactly_once_despite_more_deliveries() {
    let mut pr = proc(0);
    let mut out: Out = Outbox::new();
    pr.propose(5, &mut rng(), &mut out);
    out.drain();
    for origin in 1..7 {
        idb_all_echoes(&mut pr, origin, 5, &mut out);
    }
    let proposals = out
        .drain()
        .into_iter()
        .filter(|(_, m)| matches!(m, DexMsg::Uc(OracleMsg::Propose(_))))
        .count();
    assert_eq!(proposals, 1, "lines 12-15 run once");
}
