//! The DEX state machine (Fig. 1), transport-agnostic.

use dex_broadcast::{Action, IdbMessage, IdenticalBroadcast};
use dex_conditions::{DecisionGate, LegalityPair};
use dex_obs::{obs_code, EventKind, PredTag, Recorder, Scheme, ViewTag};
use dex_types::{ProcessId, SystemConfig, Value, View};
use dex_underlying::{Outbox, UnderlyingConsensus};
use rand::rngs::StdRng;

/// Wire messages of Algorithm DEX.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DexMsg<V, U> {
    /// `P-Send(v)` — the one-step channel (lines 3, 5).
    Proposal(V),
    /// `Id-Send(v)` traffic — the two-step channel (lines 4, 10).
    Idb(IdbMessage<ProcessId, V>),
    /// Underlying-consensus traffic (lines 13, 19).
    Uc(U),
    /// Aggregated IDB echoes: every `(origin, value)` echo this sender
    /// coalesced within one delivery tick, multicast as one message over
    /// the `Dest::All` slab path. Receivers unbatch in entry order, so the
    /// delivered-echo multiset equals the unbatched protocol's exactly
    /// (see `dex_broadcast::EchoAggregator`). Only sent when aggregation
    /// is enabled on the actor.
    EchoBatch(Vec<(ProcessId, V)>),
    /// Local flush timer for the echo aggregator: not protocol traffic,
    /// never crosses a network link (self-addressed with delay 1).
    EchoFlushTick,
}

/// Which mechanism produced a decision.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DecisionPath {
    /// Line 8: `P1(J1)` fired — a **one-step** decision.
    OneStep,
    /// Line 17: `P2(J2)` fired — a **two-step** decision.
    TwoStep,
    /// Line 21: adopted from the underlying consensus.
    Underlying,
}

impl DecisionPath {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DecisionPath::OneStep => "1-step",
            DecisionPath::TwoStep => "2-step",
            DecisionPath::Underlying => "fallback",
        }
    }
}

/// A decision together with the mechanism that produced it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Decision<V> {
    /// The decided value.
    pub value: V,
    /// The mechanism that produced it.
    pub path: DecisionPath,
}

/// One process's DEX state machine.
///
/// Fig. 1 of the paper, line by line. The machine keeps participating after
/// deciding (echoing IDB messages, running the underlying consensus) so that
/// *other* correct processes can terminate — only the local `Decide` is
/// guarded by the `decided_i` flag.
#[derive(Debug)]
pub struct DexProcess<V, P, U>
where
    U: UnderlyingConsensus<V>,
    V: Value,
{
    config: SystemConfig,
    me: ProcessId,
    pair: P,
    idb: IdenticalBroadcast<ProcessId, V>,
    uc: U,
    j1: View<V>,
    j2: View<V>,
    /// Watermark gate for `P1(J1)` — sound because `J1` is grow-only
    /// (first value wins, entries never cleared).
    p1_gate: DecisionGate,
    /// Watermark gate for `P2(J2)` — sound because IDB agreement makes
    /// `J2` grow-only too.
    p2_gate: DecisionGate,
    /// Reusable buffer for underlying-consensus output, so each UC step
    /// wraps messages without allocating a fresh outbox.
    uc_out: Outbox<U::Msg>,
    decided: Option<Decision<V>>,
    proposed: bool,
    uc_proposed: bool,
    /// Structured-event recorder (disabled by default: one branch per
    /// call site, no storage). See `dex-obs`.
    obs: Recorder,
}

/// Maps a decision path to its observability scheme tag.
fn scheme_of(path: DecisionPath) -> Scheme {
    match path {
        DecisionPath::OneStep => Scheme::OneStep,
        DecisionPath::TwoStep => Scheme::TwoStep,
        DecisionPath::Underlying => Scheme::Fallback,
    }
}

/// Builds a `Predicate` event carrying the tally snapshot the evaluation
/// saw — what lets the trace checker cross-validate its replay against the
/// live views.
fn predicate_snapshot<V: Value>(pred: PredTag, held: bool, view: &View<V>) -> EventKind {
    let (top_count, top_code) = view
        .first_with_count()
        .map(|(v, c)| (c as u16, obs_code(v)))
        .unwrap_or((0, 0));
    let second_count = view.second_with_count().map(|(_, c)| c as u16).unwrap_or(0);
    EventKind::Predicate {
        pred,
        held,
        len: view.len_non_default() as u16,
        top_count,
        second_count,
        top_code,
    }
}

impl<V, P, U> DexProcess<V, P, U>
where
    V: Value,
    P: LegalityPair<V>,
    U: UnderlyingConsensus<V>,
{
    /// Creates one process's instance.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 4t` (needed by the embedded Identical Broadcast).
    /// The legality pair's own constructor enforces its stronger bound
    /// (`n > 6t` for `P_freq`, `n > 5t` for `P_prv`).
    pub fn new(config: SystemConfig, me: ProcessId, pair: P, uc: U) -> Self {
        DexProcess {
            config,
            me,
            pair,
            idb: IdenticalBroadcast::new(config),
            uc,
            j1: View::bottom(config.n()),
            j2: View::bottom(config.n()),
            p1_gate: DecisionGate::new(config.quorum()),
            p2_gate: DecisionGate::new(config.quorum()),
            uc_out: Outbox::new(),
            decided: None,
            proposed: false,
            uc_proposed: false,
            obs: Recorder::disabled(),
        }
    }

    /// Resets the machine in place for a fresh consensus instance, reusing
    /// every allocation the previous instance grew: the `J1`/`J2` view
    /// buffers and their tally tables, the IDB witness maps, and the UC
    /// forwarding outbox all keep their capacity. The caller supplies a
    /// fresh underlying-consensus machine (its state is tiny compared to
    /// the tallies) and takes back the old one.
    ///
    /// This is the slot-recycling hook for pipelined replication: instead
    /// of allocating one `DexProcess` per log slot, a replica keeps a small
    /// pool and recycles machines as decided slots retire.
    pub fn recycle(&mut self, uc: U) -> U {
        self.idb.reset();
        self.j1.reset();
        self.j2.reset();
        self.p1_gate.reset(self.config.quorum());
        self.p2_gate.reset(self.config.quorum());
        self.uc_out.drain_iter().for_each(drop);
        self.decided = None;
        self.proposed = false;
        self.uc_proposed = false;
        std::mem::replace(&mut self.uc, uc)
    }

    /// Turns on structured event recording for this process (preallocates
    /// the log's first chunk; see `dex-obs`).
    pub fn enable_obs(&mut self) {
        self.obs = Recorder::new(self.me.index() as u16);
    }

    /// The structured-event recorder (disabled unless
    /// [`enable_obs`](Self::enable_obs) was called).
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// Mutable access to the recorder, for the network runtime's clock
    /// stamping and send/deliver recording.
    pub fn obs_mut(&mut self) -> &mut Recorder {
        &mut self.obs
    }

    /// This process's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The one-step view `J1` (for diagnostics).
    pub fn j1(&self) -> &View<V> {
        &self.j1
    }

    /// The two-step view `J2` (for diagnostics).
    pub fn j2(&self) -> &View<V> {
        &self.j2
    }

    /// The local decision, if any.
    pub fn decision(&self) -> Option<&Decision<V>> {
        self.decided.as_ref()
    }

    /// Whether this process has proposed to the underlying consensus yet.
    pub fn uc_proposed(&self) -> bool {
        self.uc_proposed
    }

    /// `Propose(v_i)` — lines 1–4: record the own value in both views and
    /// send it over both channels.
    pub fn propose(&mut self, value: V, _rng: &mut StdRng, out: &mut Outbox<DexMsg<V, U::Msg>>) {
        if self.proposed {
            return;
        }
        self.proposed = true;
        self.j1.set(self.me, value.clone()); // line 2
        self.j2.set(self.me, value.clone());
        if self.obs.is_active() {
            let me = self.me.index() as u16;
            let code = obs_code(&value);
            self.obs.record(EventKind::ViewSet {
                view: ViewTag::J1,
                origin: me,
                code,
            });
            self.obs.record(EventKind::ViewSet {
                view: ViewTag::J2,
                origin: me,
                code,
            });
            self.obs.record(EventKind::IdbInit { origin: me, code });
        }
        out.broadcast(DexMsg::Proposal(value.clone())); // line 3: P-Send
        out.broadcast(DexMsg::Idb(IdenticalBroadcast::id_send(self.me, value)));
        // line 4: Id-Send
    }

    /// Feeds one received message; returns a newly made decision, if this
    /// message triggered one.
    pub fn on_message(
        &mut self,
        from: ProcessId,
        msg: &DexMsg<V, U::Msg>,
        rng: &mut StdRng,
        out: &mut Outbox<DexMsg<V, U::Msg>>,
    ) -> Option<Decision<V>> {
        match msg {
            DexMsg::Proposal(v) => self.on_proposal(from, v),
            DexMsg::Idb(m) => self.on_idb(from, m, rng, out),
            DexMsg::Uc(m) => self.on_uc(from, m, rng, out),
            // Aggregation plumbing is handled one layer up: the actor
            // demuxes a batch into per-entry `Idb(Echo)` calls and consumes
            // flush ticks locally, so the state machine never sees either.
            DexMsg::EchoBatch(_) | DexMsg::EchoFlushTick => None,
        }
    }

    /// Lines 5–9: update `J1`, then try the one-step decision.
    fn on_proposal(&mut self, from: ProcessId, v: &V) -> Option<Decision<V>> {
        // First value wins: a Byzantine process may P-Send repeatedly with
        // different values; re-writing the entry would let it steer the view
        // after we have evaluated predicates on it.
        if self.j1.get(from).is_none() {
            if self.obs.is_active() {
                self.obs.record(EventKind::ViewSet {
                    view: ViewTag::J1,
                    origin: from.index() as u16,
                    code: obs_code(v),
                });
            }
            self.j1.set(from, v.clone());
        }
        // Line 7's adaptive re-check, gated: the gate skips the predicate
        // until |J1| ≥ n − t and, after each failed test, until the tally
        // has grown enough that P1 could possibly flip.
        if self.decided.is_none() {
            let fired = self.p1_gate.try_p1(&self.pair, &self.j1);
            if self.obs.is_active() && self.j1.len_non_default() >= self.config.quorum() {
                self.obs
                    .record(predicate_snapshot(PredTag::P1, fired, &self.j1));
            }
            if fired {
                let value = self
                    .pair
                    .decide(&self.j1)
                    .expect("J1 has at least n - t entries");
                self.obs.record(EventKind::Decide {
                    scheme: Scheme::OneStep,
                    code: obs_code(&value),
                });
                let d = Decision {
                    value,
                    path: DecisionPath::OneStep,
                };
                self.decided = Some(d.clone());
                return Some(d);
            }
        }
        None
    }

    /// Lines 10–18: route IDB traffic; on `Id-Receive` update `J2`, feed the
    /// underlying consensus once, and try the two-step decision.
    fn on_idb(
        &mut self,
        from: ProcessId,
        msg: &IdbMessage<ProcessId, V>,
        rng: &mut StdRng,
        out: &mut Outbox<DexMsg<V, U::Msg>>,
    ) -> Option<Decision<V>> {
        if self.obs.is_active() {
            match msg {
                IdbMessage::Init { key, value } => self.obs.record(EventKind::IdbInit {
                    origin: key.index() as u16,
                    code: obs_code(value),
                }),
                IdbMessage::Echo { key, value } => self.obs.record(EventKind::IdbEcho {
                    origin: key.index() as u16,
                    code: obs_code(value),
                }),
            }
        }
        let mut delivered = Vec::new();
        for action in self.idb.on_message(from, msg) {
            match action {
                Action::Broadcast(m) => out.broadcast(DexMsg::Idb(m)),
                Action::Deliver { key, value } => delivered.push((key, value)),
            }
        }
        let mut decision = None;
        for (origin, value) in delivered {
            if self.obs.is_active() {
                let origin_idx = origin.index() as u16;
                let code = obs_code(&value);
                self.obs.record(EventKind::IdbAccept {
                    origin: origin_idx,
                    code,
                });
                self.obs.record(EventKind::ViewSet {
                    view: ViewTag::J2,
                    origin: origin_idx,
                    code,
                });
            }
            self.j2.set(origin, value); // line 11 (IDB agreement makes overwrites impossible)
            if self.j2.len_non_default() >= self.config.quorum() && !self.uc_proposed {
                // Lines 12–15: activate the underlying consensus. This runs
                // even if we already decided — other processes may need it.
                self.uc_proposed = true;
                let proposal = self
                    .pair
                    .decide(&self.j2)
                    .expect("J2 has at least n - t entries");
                self.obs.record(EventKind::Fallback {
                    code: obs_code(&proposal),
                });
                self.uc.propose(proposal, rng, &mut self.uc_out);
                forward_uc(&mut self.uc_out, out);
            }
            if self.decided.is_none() {
                let fired = self.p2_gate.try_p2(&self.pair, &self.j2);
                if self.obs.is_active() && self.j2.len_non_default() >= self.config.quorum() {
                    self.obs
                        .record(predicate_snapshot(PredTag::P2, fired, &self.j2));
                }
                if fired {
                    // Lines 16–18.
                    let value = self
                        .pair
                        .decide(&self.j2)
                        .expect("J2 has at least n - t entries");
                    self.obs.record(EventKind::Decide {
                        scheme: Scheme::TwoStep,
                        code: obs_code(&value),
                    });
                    let d = Decision {
                        value,
                        path: DecisionPath::TwoStep,
                    };
                    self.decided = Some(d.clone());
                    decision = Some(d);
                }
            }
        }
        decision
    }

    /// Lines 19–22: run the underlying consensus; adopt its decision.
    fn on_uc(
        &mut self,
        from: ProcessId,
        msg: &U::Msg,
        rng: &mut StdRng,
        out: &mut Outbox<DexMsg<V, U::Msg>>,
    ) -> Option<Decision<V>> {
        self.uc.on_message(from, msg, rng, &mut self.uc_out);
        forward_uc(&mut self.uc_out, out);
        if self.decided.is_none() {
            if let Some(v) = self.uc.decision() {
                let d = Decision {
                    value: v.clone(),
                    path: DecisionPath::Underlying,
                };
                self.obs.record(EventKind::Decide {
                    scheme: scheme_of(d.path),
                    code: obs_code(&d.value),
                });
                self.decided = Some(d.clone());
                return Some(d);
            }
        }
        None
    }
}

impl<V, U> dex_adversary::ProtocolForgery for DexMsg<V, U>
where
    V: Value,
    U: Clone + core::fmt::Debug + Send + 'static,
{
    type Value = V;

    /// A Byzantine proposal feeds both channels, like line 3–4 of Fig. 1.
    fn forge_proposal(me: ProcessId, _to: ProcessId, value: V) -> Vec<Self> {
        vec![
            DexMsg::Proposal(value.clone()),
            DexMsg::Idb(IdenticalBroadcast::id_send(me, value)),
        ]
    }

    /// Poison the two-step channel: conflicting witness echoes for every
    /// broadcast instance observed being opened. Reacting to inits only
    /// (never to echoes) keeps adversarial traffic finite.
    fn forge_reaction(_me: ProcessId, observed: &Self, _to: ProcessId, value: V) -> Vec<Self> {
        match observed {
            DexMsg::Idb(IdbMessage::Init { key, .. }) => {
                vec![DexMsg::Idb(IdbMessage::Echo { key: *key, value })]
            }
            _ => Vec::new(),
        }
    }
}

/// Wraps underlying-consensus outbox messages into `DexMsg::Uc`, draining
/// in place so both the UC scratch outbox and the destination keep their
/// buffers.
fn forward_uc<V, U>(uc_out: &mut Outbox<U>, out: &mut Outbox<DexMsg<V, U>>) {
    uc_out.map_drain_into(out, DexMsg::Uc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_conditions::{FrequencyPair, PrivilegedPair};
    use dex_underlying::{OracleConsensus, OracleMsg};

    type Freq = DexProcess<u64, FrequencyPair, OracleConsensus<u64>>;
    type Out = Outbox<DexMsg<u64, OracleMsg<u64>>>;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn freq_process(n: usize, t: usize, me: usize) -> Freq {
        let cfg = SystemConfig::new(n, t).unwrap();
        DexProcess::new(
            cfg,
            p(me),
            FrequencyPair::new(cfg).unwrap(),
            OracleConsensus::new(cfg, p(me), p(0)),
        )
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn propose_sends_on_both_channels_once() {
        let mut proc = freq_process(7, 1, 0);
        let mut out: Out = Outbox::new();
        proc.propose(5, &mut rng(), &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 2);
        assert!(matches!(msgs[0].1, DexMsg::Proposal(5)));
        assert!(matches!(
            msgs[1].1,
            DexMsg::Idb(IdbMessage::Init { value: 5, .. })
        ));
        proc.propose(6, &mut rng(), &mut out);
        assert!(out.is_empty());
        // Lines 2: own entries recorded immediately.
        assert_eq!(proc.j1().get(p(0)), Some(&5));
        assert_eq!(proc.j2().get(p(0)), Some(&5));
    }

    #[test]
    fn one_step_decision_on_unanimous_quorum() {
        // n = 7, t = 1: quorum 6, P1 needs margin > 4.
        let mut proc = freq_process(7, 1, 0);
        let mut out: Out = Outbox::new();
        proc.propose(5, &mut rng(), &mut out);
        let mut decision = None;
        for j in 1..6 {
            decision = proc.on_message(p(j), &DexMsg::Proposal(5), &mut rng(), &mut out);
        }
        let d = decision.expect("6 unanimous entries, margin 6 > 4");
        assert_eq!(d.value, 5);
        assert_eq!(d.path, DecisionPath::OneStep);
        assert_eq!(proc.decision(), Some(&d));
    }

    #[test]
    fn no_one_step_below_quorum_even_with_margin() {
        let mut proc = freq_process(7, 1, 0);
        let mut out: Out = Outbox::new();
        proc.propose(5, &mut rng(), &mut out);
        for j in 1..5 {
            // Only 5 entries total: |J1| = 5 < 6 = n − t.
            let d = proc.on_message(p(j), &DexMsg::Proposal(5), &mut rng(), &mut out);
            assert!(d.is_none());
        }
    }

    #[test]
    fn adaptive_late_message_can_trigger_one_step() {
        // With one dissenter among the first 6, margin is 4 (not > 4t = 4);
        // the 7th (late, all-correct) message lifts it to 5 — the adaptive
        // re-check of line 7 fires after n − t messages have already arrived.
        let mut proc = freq_process(7, 1, 0);
        let mut out: Out = Outbox::new();
        proc.propose(5, &mut rng(), &mut out);
        for j in 1..5 {
            assert!(proc
                .on_message(p(j), &DexMsg::Proposal(5), &mut rng(), &mut out)
                .is_none());
        }
        assert!(proc
            .on_message(p(5), &DexMsg::Proposal(9), &mut rng(), &mut out)
            .is_none()); // |J1| = 6, margin 5 - 1 = 4, not enough
        let d = proc
            .on_message(p(6), &DexMsg::Proposal(5), &mut rng(), &mut out)
            .expect("margin 6 - 1 = 5 > 4");
        assert_eq!(d.path, DecisionPath::OneStep);
        assert_eq!(d.value, 5);
    }

    #[test]
    fn byzantine_resend_cannot_rewrite_j1() {
        let mut proc = freq_process(7, 1, 0);
        let mut out: Out = Outbox::new();
        proc.propose(5, &mut rng(), &mut out);
        proc.on_message(p(1), &DexMsg::Proposal(5), &mut rng(), &mut out);
        proc.on_message(p(1), &DexMsg::Proposal(9), &mut rng(), &mut out);
        assert_eq!(proc.j1().get(p(1)), Some(&5), "first value wins");
    }

    /// Delivers a full IDB exchange for origin `origin` with value `v` into
    /// `proc`, simulating echoes from all processes.
    fn idb_deliver(proc: &mut Freq, origin: usize, v: u64, out: &mut Out) -> Option<Decision<u64>> {
        let mut decision = None;
        for echoer in 0..7 {
            let d = proc.on_message(
                p(echoer),
                &DexMsg::Idb(IdbMessage::Echo {
                    key: p(origin),
                    value: v,
                }),
                &mut rng(),
                out,
            );
            if d.is_some() {
                decision = d;
            }
        }
        decision
    }

    #[test]
    fn two_step_decision_and_uc_proposal() {
        // Margin 4 (5 fives vs 1 nine among 6): P2 (> 2) fires but P1 (> 4)
        // does not.
        let mut proc = freq_process(7, 1, 0);
        let mut out: Out = Outbox::new();
        proc.propose(5, &mut rng(), &mut out);
        out.drain();

        let mut decision = None;
        for origin in 1..5 {
            assert!(idb_deliver(&mut proc, origin, 5, &mut out).is_none());
        }
        // Sixth entry (origin 5) delivers value 9: |J2| = 6 now.
        if let Some(d) = idb_deliver(&mut proc, 5, 9, &mut out) {
            decision = Some(d);
        }
        let d = decision.expect("P2 fires: margin 5 - 1 = 4 > 2t = 2");
        assert_eq!(d.path, DecisionPath::TwoStep);
        assert_eq!(d.value, 5);
        // Lines 12–15 ran first: the UC was activated with F(J2) = 5.
        assert!(proc.uc_proposed());
        let sent = out.drain();
        assert!(
            sent.iter()
                .any(|(_, m)| matches!(m, DexMsg::Uc(OracleMsg::Propose(5)))),
            "UC proposal must be emitted: {sent:?}"
        );
    }

    #[test]
    fn uc_proposal_happens_even_after_one_step_decision() {
        // Case 4 of Lemma 2 relies on every correct process proposing to the
        // UC, including ones that already decided in one step.
        let mut proc = freq_process(7, 1, 0);
        let mut out: Out = Outbox::new();
        proc.propose(5, &mut rng(), &mut out);
        for j in 1..6 {
            proc.on_message(p(j), &DexMsg::Proposal(5), &mut rng(), &mut out);
        }
        assert_eq!(proc.decision().unwrap().path, DecisionPath::OneStep);
        out.drain();
        for origin in 1..6 {
            idb_deliver(&mut proc, origin, 5, &mut out);
        }
        assert!(proc.uc_proposed());
    }

    #[test]
    fn underlying_decision_is_adopted_when_nothing_expedites() {
        let mut proc = freq_process(7, 1, 1); // coordinator is p0
        let mut out: Out = Outbox::new();
        proc.propose(5, &mut rng(), &mut out);
        // UC decide arrives from the coordinator.
        let d = proc
            .on_message(
                p(0),
                &DexMsg::Uc(OracleMsg::Decide(8)),
                &mut rng(),
                &mut out,
            )
            .expect("adopt UC decision");
        assert_eq!(d.path, DecisionPath::Underlying);
        assert_eq!(d.value, 8);
    }

    #[test]
    fn uc_decision_does_not_override_prior_decision() {
        let mut proc = freq_process(7, 1, 1);
        let mut out: Out = Outbox::new();
        proc.propose(5, &mut rng(), &mut out);
        for j in 2..7 {
            proc.on_message(p(j), &DexMsg::Proposal(5), &mut rng(), &mut out);
        }
        assert_eq!(proc.decision().unwrap().path, DecisionPath::OneStep);
        let d = proc.on_message(
            p(0),
            &DexMsg::Uc(OracleMsg::Decide(8)),
            &mut rng(),
            &mut out,
        );
        assert!(d.is_none());
        assert_eq!(proc.decision().unwrap().value, 5);
    }

    #[test]
    fn privileged_pair_process_compiles_and_decides() {
        let cfg = SystemConfig::new(6, 1).unwrap();
        let mut proc: DexProcess<u64, PrivilegedPair<u64>, OracleConsensus<u64>> = DexProcess::new(
            cfg,
            p(0),
            PrivilegedPair::new(cfg, 1u64).unwrap(),
            OracleConsensus::new(cfg, p(0), p(0)),
        );
        let mut out: Outbox<DexMsg<u64, OracleMsg<u64>>> = Outbox::new();
        proc.propose(1, &mut rng(), &mut out);
        let mut decision = None;
        for j in 1..5 {
            decision = proc.on_message(p(j), &DexMsg::Proposal(1), &mut rng(), &mut out);
        }
        // #m(J1) = 5 > 3t = 3 ⇒ one-step.
        let d = decision.expect("P1_prv fires");
        assert_eq!(d.value, 1);
        assert_eq!(d.path, DecisionPath::OneStep);
    }

    #[test]
    fn decision_path_labels() {
        assert_eq!(DecisionPath::OneStep.label(), "1-step");
        assert_eq!(DecisionPath::TwoStep.label(), "2-step");
        assert_eq!(DecisionPath::Underlying.label(), "fallback");
    }
}
