//! **Algorithm DEX** — the doubly-expedited adaptive one-step Byzantine
//! consensus of the paper (Fig. 1).
//!
//! Each process runs three mechanisms *concurrently*:
//!
//! 1. **One-step scheme** (lines 5–9): proposals arrive over plain
//!    point-to-point sends into view `J1`; once `|J1| ≥ n − t` the process
//!    evaluates `P1(J1)` **on every subsequent reception** — this
//!    incremental re-evaluation is what makes the algorithm *adaptive*
//!    ("DEX allows the processes to collect messages from all correct
//!    processes", §4). If `P1` holds, it decides `F(J1)` at causal depth 1.
//! 2. **Two-step scheme** (lines 10–18): proposals also travel over
//!    [Identical Broadcast](dex_broadcast::IdenticalBroadcast) into view
//!    `J2` (equivocation-free). At `|J2| ≥ n − t` the process proposes
//!    `F(J2)` to the underlying consensus **unconditionally**, and decides
//!    `F(J2)` at causal depth 2 whenever `P2(J2)` holds.
//! 3. **Fallback** (lines 19–22): when the underlying consensus decides,
//!    adopt its value unless already decided.
//!
//! The algorithm is generic over the
//! [`LegalityPair`](dex_conditions::LegalityPair) — any pair satisfying
//! LT1/LT2/LA3/LA4/LU5 yields a correct doubly-expedited algorithm
//! (Theorem 3) — and over the
//! [`UnderlyingConsensus`](dex_underlying::UnderlyingConsensus).
//!
//! # Examples
//!
//! Driving one process by hand in a unanimous 7-process system (`t = 1`):
//!
//! ```
//! use dex_conditions::FrequencyPair;
//! use dex_core::{DecisionPath, DexMsg, DexProcess};
//! use dex_types::{ProcessId, SystemConfig};
//! use dex_underlying::{OracleConsensus, Outbox};
//! use rand::SeedableRng;
//!
//! let cfg = SystemConfig::new(7, 1)?;
//! let pair = FrequencyPair::new(cfg)?;
//! let uc = OracleConsensus::new(cfg, ProcessId::new(0), ProcessId::new(0));
//! let mut p0 = DexProcess::new(cfg, ProcessId::new(0), pair, uc);
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut out = Outbox::new();
//! p0.propose(42, &mut rng, &mut out);
//!
//! // Feed the unanimous proposals of 5 peers: with its own entry that is
//! // n − t = 6 entries of 42, margin 6 > 4t = 4 ⇒ one-step decision.
//! let mut decision = None;
//! for j in 1..6 {
//!     decision = p0.on_message(ProcessId::new(j), &DexMsg::Proposal(42), &mut rng, &mut out);
//!     if decision.is_some() { break; }
//! }
//! let d = decision.expect("one-step decision fires at n - t unanimous proposals");
//! assert_eq!(d.value, 42);
//! assert_eq!(d.path, DecisionPath::OneStep);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod process;
mod resend;

pub use actor::{dex_msg_bytes, dex_msg_class, DecisionRecord, DexActor};
pub use process::{Decision, DecisionPath, DexMsg, DexProcess};
pub use resend::{Reliable, ReliableMsg, ResendPolicy};

use dex_conditions::{FrequencyPair, PrivilegedPair};

/// DEX instantiated with the frequency-based pair `P_freq` (§3.3).
pub type DexFreq<V, U> = DexProcess<V, FrequencyPair, U>;

/// DEX instantiated with the privileged-value pair `P_prv` (§3.4).
pub type DexPrv<V, U> = DexProcess<V, PrivilegedPair<V>, U>;
