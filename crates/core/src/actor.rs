//! Simulation adapter: `DexProcess` as a `dex-simnet` actor.

use crate::process::{DecisionPath, DexMsg, DexProcess};
use dex_broadcast::{EchoAggregator, IdbMessage};
use dex_conditions::LegalityPair;
use dex_simnet::{Actor, Context, MsgClass, Time};
use dex_types::{Dest, ProcessId, StepDepth, Value};
use dex_underlying::{Outbox, UnderlyingConsensus};

/// Classifies DEX wire traffic for the per-class
/// [`NetStats`](dex_simnet::NetStats) breakdown. Shared by [`DexActor`]
/// and the harness node wrappers so every runtime attributes identically.
pub fn dex_msg_class<V, U>(msg: &DexMsg<V, U>) -> MsgClass {
    match msg {
        DexMsg::Proposal(_) | DexMsg::Idb(IdbMessage::Init { .. }) => MsgClass::Init,
        DexMsg::Idb(IdbMessage::Echo { .. }) => MsgClass::Echo,
        DexMsg::EchoBatch(entries) => MsgClass::Batch(entries.len() as u32),
        DexMsg::Uc(_) | DexMsg::EchoFlushTick => MsgClass::Other,
    }
}

/// Wire size of DEX traffic: shallow for the `Copy`-ish variants, deep for
/// echo batches whose entries live on the heap.
pub fn dex_msg_bytes<V, U>(msg: &DexMsg<V, U>) -> usize {
    let shallow = core::mem::size_of_val(msg);
    match msg {
        DexMsg::EchoBatch(entries) => {
            shallow + entries.len() * core::mem::size_of::<(ProcessId, V)>()
        }
        _ => shallow,
    }
}

/// A decision as observed inside a simulation run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecisionRecord<V> {
    /// The decided value.
    pub value: V,
    /// Which mechanism decided.
    pub path: DecisionPath,
    /// Causal communication-step depth of the triggering message — the
    /// paper's step count: 1 for one-step, 2 for two-step decisions.
    pub depth: StepDepth,
    /// Virtual time of the decision.
    pub at: Time,
}

/// Wraps a [`DexProcess`] as a discrete-event-simulation actor.
///
/// The actor proposes on start, routes messages, and records the decision
/// with its causal depth and virtual time for the experiment harness.
#[derive(Debug)]
pub struct DexActor<V, P, U>
where
    V: Value,
    U: UnderlyingConsensus<V>,
{
    process: DexProcess<V, P, U>,
    proposal: V,
    decision: Option<DecisionRecord<V>>,
    /// Echo aggregation state; `None` (the default) keeps the unbatched
    /// wire protocol byte-identical to builds before aggregation existed.
    agg: Option<EchoAggregator<ProcessId, V>>,
}

impl<V, P, U> DexActor<V, P, U>
where
    V: Value,
    P: LegalityPair<V>,
    U: UnderlyingConsensus<V>,
{
    /// Creates the actor; it will propose `proposal` at simulation start.
    pub fn new(process: DexProcess<V, P, U>, proposal: V) -> Self {
        DexActor {
            process,
            proposal,
            decision: None,
            agg: None,
        }
    }

    /// Turns on echo aggregation: IDB echoes this actor emits are coalesced
    /// per delivery tick and multicast as one [`DexMsg::EchoBatch`] per
    /// depth bucket instead of one message per echo. Decisions, causal
    /// depths, and trace invariants are unchanged — only the wire-message
    /// count drops (see `dex_broadcast::EchoAggregator`).
    pub fn enable_aggregation(&mut self) {
        self.agg = Some(EchoAggregator::new());
    }

    /// The recorded decision, if the process has decided.
    pub fn decision(&self) -> Option<&DecisionRecord<V>> {
        self.decision.as_ref()
    }

    /// The wrapped state machine (for view diagnostics).
    pub fn process(&self) -> &DexProcess<V, P, U> {
        &self.process
    }

    /// Mutable access to the wrapped state machine (e.g. to enable
    /// structured event recording before the run starts).
    pub fn process_mut(&mut self) -> &mut DexProcess<V, P, U> {
        &mut self.process
    }

    /// Drains the protocol outbox into the network context. With
    /// aggregation on, `Dest::All` IDB echoes are diverted into the
    /// aggregator (stamped with the depth they would have been sent at)
    /// and a 1-tick flush timer is armed; everything else passes through
    /// untouched, so the off path stays byte-identical.
    fn flush(
        &mut self,
        out: &mut Outbox<DexMsg<V, U::Msg>>,
        ctx: &mut Context<'_, DexMsg<V, U::Msg>>,
    ) {
        for (dest, m) in out.drain() {
            match (self.agg.as_mut(), dest, m) {
                (Some(agg), Dest::All, DexMsg::Idb(IdbMessage::Echo { key, value })) => {
                    agg.offer(key, value, ctx.depth().next());
                }
                (_, dest, m) => ctx.send_dest(dest, m),
            }
        }
        if let Some(agg) = self.agg.as_mut() {
            if agg.try_arm() {
                ctx.send_self_after(1, DexMsg::EchoFlushTick);
            }
        }
    }

    fn record_decision(
        &mut self,
        d: crate::process::Decision<V>,
        ctx: &Context<'_, DexMsg<V, U::Msg>>,
    ) {
        self.decision = Some(DecisionRecord {
            value: d.value,
            path: d.path,
            depth: ctx.depth(),
            at: ctx.now(),
        });
    }
}

impl<V, P, U> Actor for DexActor<V, P, U>
where
    V: Value,
    P: LegalityPair<V> + Send + 'static,
    U: UnderlyingConsensus<V> + Send + 'static,
{
    type Msg = DexMsg<V, U::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let mut out = Outbox::new();
        let v = self.proposal.clone();
        self.process.propose(v, ctx.rng(), &mut out);
        self.flush(&mut out, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        match msg {
            DexMsg::EchoFlushTick => {
                // Self-addressed timer only; a forged tick from a peer
                // must not trigger a flush.
                if from != ctx.me() {
                    return;
                }
                let Some(agg) = self.agg.as_mut() else {
                    return;
                };
                // One batch per depth bucket, each dispatched at the exact
                // depth its unbatched echoes would have carried — the
                // flush tick is a local timer, not a communication step.
                for (depth, entries) in agg.take_batches() {
                    ctx.send_dest_at(Dest::All, DexMsg::EchoBatch(entries), depth);
                }
            }
            DexMsg::EchoBatch(entries) => {
                // Unbatch deterministically in entry order: each entry is
                // exactly the echo the sender would have multicast
                // individually, so witness maps, thresholds, obs events
                // and decisions replay the unbatched protocol.
                let mut out = Outbox::new();
                let mut decision = None;
                for (key, value) in entries {
                    let echo = DexMsg::Idb(IdbMessage::Echo {
                        key: *key,
                        value: value.clone(),
                    });
                    let d = self.process.on_message(from, &echo, ctx.rng(), &mut out);
                    decision = decision.or(d);
                }
                self.flush(&mut out, ctx);
                if let Some(d) = decision {
                    if self.decision.is_none() {
                        self.record_decision(d, ctx);
                    }
                }
            }
            _ => {
                let mut out = Outbox::new();
                let decision = self.process.on_message(from, msg, ctx.rng(), &mut out);
                self.flush(&mut out, ctx);
                if let Some(d) = decision {
                    self.record_decision(d, ctx);
                }
            }
        }
    }

    fn recorder_mut(&mut self) -> Option<&mut dex_obs::Recorder> {
        self.process.obs_mut().active_mut()
    }

    fn msg_bytes(msg: &Self::Msg) -> usize {
        dex_msg_bytes(msg)
    }

    fn msg_class(msg: &Self::Msg) -> MsgClass {
        dex_msg_class(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_conditions::FrequencyPair;
    use dex_simnet::{DelayModel, Simulation};
    use dex_types::SystemConfig;
    use dex_underlying::OracleConsensus;

    fn build(
        n: usize,
        t: usize,
        proposals: &[u64],
    ) -> Vec<DexActor<u64, FrequencyPair, OracleConsensus<u64>>> {
        let cfg = SystemConfig::new(n, t).unwrap();
        proposals
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let me = ProcessId::new(i);
                DexActor::new(
                    DexProcess::new(
                        cfg,
                        me,
                        FrequencyPair::new(cfg).unwrap(),
                        OracleConsensus::new(cfg, me, ProcessId::new(0)),
                    ),
                    *v,
                )
            })
            .collect()
    }

    #[test]
    fn unanimous_run_decides_one_step_everywhere() {
        for seed in 0..10 {
            let actors = build(7, 1, &[3; 7]);
            let mut sim = Simulation::builder(actors)
                .seed(seed)
                .delay(DelayModel::Uniform { min: 1, max: 10 })
                .build();
            assert!(sim.run(1_000_000).quiescent, "seed {seed}");
            for a in sim.actors() {
                let d = a.decision().expect("decided");
                assert_eq!(d.value, 3);
                assert_eq!(d.path, DecisionPath::OneStep);
                assert_eq!(d.depth, StepDepth::new(1), "one-step = causal depth 1");
            }
        }
    }

    #[test]
    fn moderate_margin_decides_two_steps() {
        // 5 vs 2 margin 3: P2 (> 2) yes, P1 (> 4) no.
        for seed in 0..10 {
            let actors = build(7, 1, &[3, 3, 3, 3, 3, 9, 9]);
            let mut sim = Simulation::builder(actors)
                .seed(seed)
                .delay(DelayModel::Uniform { min: 1, max: 10 })
                .build();
            assert!(sim.run(1_000_000).quiescent, "seed {seed}");
            for a in sim.actors() {
                let d = a.decision().expect("decided");
                assert_eq!(d.value, 3, "seed {seed}");
                assert_ne!(d.path, DecisionPath::OneStep, "margin too small for P1");
                if d.path == DecisionPath::TwoStep {
                    assert_eq!(d.depth, StepDepth::new(2), "two-step = causal depth 2");
                }
            }
        }
    }

    #[test]
    fn aggregated_runs_decide_identically_with_fewer_messages() {
        // Same inputs, batched vs unbatched. Batching coalesces messages,
        // so the two runs are *different valid schedules* (the delay RNG
        // stream shifts); what must match is everything the paper makes
        // schedule-independent: agreement within each run, the decided
        // value whenever the input margin is decisive (> t over the
        // runner-up, so no n − t subset can flip the plurality), and the
        // exact one-step depth on unanimous input. The wire must carry
        // strictly fewer messages — the point of the layer.
        let inputs: [(&[u64], bool); 3] = [
            (&[3; 7], true),                 // margin 7-0: decisive
            (&[3, 3, 3, 3, 3, 9, 9], true),  // margin 5-2 > t: decisive
            (&[3, 3, 3, 3, 9, 9, 9], false), // 4-3 knife edge: agreement only
        ];
        for (proposals, decisive) in inputs {
            for seed in 0..5 {
                let plain = build(7, 1, proposals);
                let mut batched = build(7, 1, proposals);
                for a in &mut batched {
                    a.enable_aggregation();
                }
                let delay = DelayModel::Uniform { min: 1, max: 10 };
                let mut sim_p = Simulation::builder(plain)
                    .seed(seed)
                    .delay(delay.clone())
                    .build();
                let mut sim_b = Simulation::builder(batched).seed(seed).delay(delay).build();
                assert!(sim_p.run(1_000_000).quiescent);
                assert!(sim_b.run(1_000_000).quiescent);
                let first = sim_b.actors()[0].decision().unwrap().value;
                for (p, b) in sim_p.actors().iter().zip(sim_b.actors()) {
                    let (dp, db) = (p.decision().unwrap(), b.decision().unwrap());
                    assert_eq!(db.value, first, "agreement in the batched run");
                    if decisive {
                        assert_eq!(dp.value, db.value, "seed {seed}");
                    }
                    if db.path == DecisionPath::OneStep {
                        assert_eq!(db.depth, StepDepth::new(1), "one-step stays depth 1");
                    }
                    if db.path == DecisionPath::TwoStep {
                        assert_eq!(db.depth, StepDepth::new(2), "two-step stays depth 2");
                    }
                }
                assert!(
                    sim_b.stats().sent < sim_p.stats().sent,
                    "seed {seed}: batched {} !< unbatched {}",
                    sim_b.stats().sent,
                    sim_p.stats().sent
                );
                assert!(sim_b.stats().echoes_batched > 0);
                assert_eq!(sim_b.stats().payload_clones, 0, "batches ride the slab");
                // Every individually-sent echo disappeared into batches.
                assert_eq!(sim_b.stats().sent_echo, 0, "all echoes must batch");
            }
        }
    }

    #[test]
    fn split_input_falls_back_to_underlying() {
        // 4 vs 3: margin 1 ≤ 2t, no expedited path; UC (oracle, 2 more
        // steps after the 2-step IDB) decides at depth 4.
        for seed in 0..10 {
            let actors = build(7, 1, &[3, 3, 3, 3, 9, 9, 9]);
            let mut sim = Simulation::builder(actors)
                .seed(seed)
                .delay(DelayModel::Uniform { min: 1, max: 10 })
                .build();
            assert!(sim.run(1_000_000).quiescent, "seed {seed}");
            let first = sim.actors()[0].decision().unwrap().value;
            for a in sim.actors() {
                let d = a.decision().expect("decided");
                assert_eq!(d.path, DecisionPath::Underlying, "seed {seed}");
                assert_eq!(d.value, first, "agreement, seed {seed}");
                assert_eq!(
                    d.depth,
                    StepDepth::new(4),
                    "well-behaved worst case is four steps (paper §5)"
                );
            }
        }
    }
}
