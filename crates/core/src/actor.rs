//! Simulation adapter: `DexProcess` as a `dex-simnet` actor.

use crate::process::{DecisionPath, DexMsg, DexProcess};
use dex_conditions::LegalityPair;
use dex_simnet::{Actor, Context, Time};
use dex_types::{ProcessId, StepDepth, Value};
use dex_underlying::{Outbox, UnderlyingConsensus};

/// A decision as observed inside a simulation run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecisionRecord<V> {
    /// The decided value.
    pub value: V,
    /// Which mechanism decided.
    pub path: DecisionPath,
    /// Causal communication-step depth of the triggering message — the
    /// paper's step count: 1 for one-step, 2 for two-step decisions.
    pub depth: StepDepth,
    /// Virtual time of the decision.
    pub at: Time,
}

/// Wraps a [`DexProcess`] as a discrete-event-simulation actor.
///
/// The actor proposes on start, routes messages, and records the decision
/// with its causal depth and virtual time for the experiment harness.
#[derive(Debug)]
pub struct DexActor<V, P, U>
where
    V: Value,
    U: UnderlyingConsensus<V>,
{
    process: DexProcess<V, P, U>,
    proposal: V,
    decision: Option<DecisionRecord<V>>,
}

impl<V, P, U> DexActor<V, P, U>
where
    V: Value,
    P: LegalityPair<V>,
    U: UnderlyingConsensus<V>,
{
    /// Creates the actor; it will propose `proposal` at simulation start.
    pub fn new(process: DexProcess<V, P, U>, proposal: V) -> Self {
        DexActor {
            process,
            proposal,
            decision: None,
        }
    }

    /// The recorded decision, if the process has decided.
    pub fn decision(&self) -> Option<&DecisionRecord<V>> {
        self.decision.as_ref()
    }

    /// The wrapped state machine (for view diagnostics).
    pub fn process(&self) -> &DexProcess<V, P, U> {
        &self.process
    }

    /// Mutable access to the wrapped state machine (e.g. to enable
    /// structured event recording before the run starts).
    pub fn process_mut(&mut self) -> &mut DexProcess<V, P, U> {
        &mut self.process
    }

    fn flush(out: &mut Outbox<DexMsg<V, U::Msg>>, ctx: &mut Context<'_, DexMsg<V, U::Msg>>) {
        for (dest, m) in out.drain() {
            ctx.send_dest(dest, m);
        }
    }
}

impl<V, P, U> Actor for DexActor<V, P, U>
where
    V: Value,
    P: LegalityPair<V> + Send + 'static,
    U: UnderlyingConsensus<V> + Send + 'static,
{
    type Msg = DexMsg<V, U::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let mut out = Outbox::new();
        let v = self.proposal.clone();
        self.process.propose(v, ctx.rng(), &mut out);
        Self::flush(&mut out, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        let mut out = Outbox::new();
        let decision = self.process.on_message(from, msg, ctx.rng(), &mut out);
        Self::flush(&mut out, ctx);
        if let Some(d) = decision {
            self.decision = Some(DecisionRecord {
                value: d.value,
                path: d.path,
                depth: ctx.depth(),
                at: ctx.now(),
            });
        }
    }

    fn recorder_mut(&mut self) -> Option<&mut dex_obs::Recorder> {
        self.process.obs_mut().active_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_conditions::FrequencyPair;
    use dex_simnet::{DelayModel, Simulation};
    use dex_types::SystemConfig;
    use dex_underlying::OracleConsensus;

    fn build(
        n: usize,
        t: usize,
        proposals: &[u64],
    ) -> Vec<DexActor<u64, FrequencyPair, OracleConsensus<u64>>> {
        let cfg = SystemConfig::new(n, t).unwrap();
        proposals
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let me = ProcessId::new(i);
                DexActor::new(
                    DexProcess::new(
                        cfg,
                        me,
                        FrequencyPair::new(cfg).unwrap(),
                        OracleConsensus::new(cfg, me, ProcessId::new(0)),
                    ),
                    *v,
                )
            })
            .collect()
    }

    #[test]
    fn unanimous_run_decides_one_step_everywhere() {
        for seed in 0..10 {
            let actors = build(7, 1, &[3; 7]);
            let mut sim = Simulation::builder(actors)
                .seed(seed)
                .delay(DelayModel::Uniform { min: 1, max: 10 })
                .build();
            assert!(sim.run(1_000_000).quiescent, "seed {seed}");
            for a in sim.actors() {
                let d = a.decision().expect("decided");
                assert_eq!(d.value, 3);
                assert_eq!(d.path, DecisionPath::OneStep);
                assert_eq!(d.depth, StepDepth::new(1), "one-step = causal depth 1");
            }
        }
    }

    #[test]
    fn moderate_margin_decides_two_steps() {
        // 5 vs 2 margin 3: P2 (> 2) yes, P1 (> 4) no.
        for seed in 0..10 {
            let actors = build(7, 1, &[3, 3, 3, 3, 3, 9, 9]);
            let mut sim = Simulation::builder(actors)
                .seed(seed)
                .delay(DelayModel::Uniform { min: 1, max: 10 })
                .build();
            assert!(sim.run(1_000_000).quiescent, "seed {seed}");
            for a in sim.actors() {
                let d = a.decision().expect("decided");
                assert_eq!(d.value, 3, "seed {seed}");
                assert_ne!(d.path, DecisionPath::OneStep, "margin too small for P1");
                if d.path == DecisionPath::TwoStep {
                    assert_eq!(d.depth, StepDepth::new(2), "two-step = causal depth 2");
                }
            }
        }
    }

    #[test]
    fn split_input_falls_back_to_underlying() {
        // 4 vs 3: margin 1 ≤ 2t, no expedited path; UC (oracle, 2 more
        // steps after the 2-step IDB) decides at depth 4.
        for seed in 0..10 {
            let actors = build(7, 1, &[3, 3, 3, 3, 9, 9, 9]);
            let mut sim = Simulation::builder(actors)
                .seed(seed)
                .delay(DelayModel::Uniform { min: 1, max: 10 })
                .build();
            assert!(sim.run(1_000_000).quiescent, "seed {seed}");
            let first = sim.actors()[0].decision().unwrap().value;
            for a in sim.actors() {
                let d = a.decision().expect("decided");
                assert_eq!(d.path, DecisionPath::Underlying, "seed {seed}");
                assert_eq!(d.value, first, "agreement, seed {seed}");
                assert_eq!(
                    d.depth,
                    StepDepth::new(4),
                    "well-behaved worst case is four steps (paper §5)"
                );
            }
        }
    }
}
