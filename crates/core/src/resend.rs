//! Retransmission layer: ack-tracked resends with deterministic backoff.
//!
//! The paper's system model assumes reliable links (§2.1); real networks
//! provide them by **retransmission**. [`Reliable`] wraps any
//! [`Actor`] and supplies exactly that: every outbound message gets a
//! sequence number and stays in an outbound buffer until each recipient
//! acknowledges it; unacknowledged messages are re-sent on a deterministic
//! timeout that backs off exponentially, up to a retry budget — after
//! which the wrapper *degrades to fallback*, dropping the message and
//! leaving the protocol's own `n − t` quorum redundancy to absorb the
//! loss.
//!
//! Two properties matter for the simulations:
//!
//! * **Fresh per-attempt fault decisions.** Each retransmission is a new
//!   send through the network, so the chaos layer draws an *independent*
//!   drop decision for it. A message facing sustained loss `p` survives
//!   some attempt with probability `1 − pᵏ` — this is what turns
//!   "deadlocks under sustained loss" into "terminates under sustained
//!   loss" (see `tests/recovery_matrix.rs`).
//! * **Determinism.** Retry timers use
//!   [`Context::send_self_after`] — exact virtual-time delays that draw
//!   nothing from any RNG stream — so wrapped runs are replayable from
//!   the seed like unwrapped ones.

use dex_obs::{EventKind, Recorder};
use dex_simnet::{Actor, Context};
use dex_types::{Dest, ProcessId};
use std::collections::{BTreeMap, BTreeSet};

/// Retransmission tuning for [`Reliable`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResendPolicy {
    /// Initial retransmission timeout, in virtual time units.
    pub rto: u64,
    /// Backoff exponent cap: attempt `k` waits `rto << min(k, cap)`.
    pub backoff_cap: u32,
    /// Retry budget per message; when exhausted the message is dropped
    /// (degrade to fallback — quorum redundancy absorbs the loss).
    pub max_attempts: u32,
}

impl Default for ResendPolicy {
    /// A few round trips at the simulators' default 1–10 unit delays,
    /// doubling up to 16×, with enough attempts that sustained 20–50%
    /// loss is survived with overwhelming probability.
    fn default() -> Self {
        ResendPolicy {
            rto: 48,
            backoff_cap: 4,
            max_attempts: 12,
        }
    }
}

/// Wire envelope of the resend layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReliableMsg<M> {
    /// Application payload `msg`, tracked under `seq` until acknowledged.
    Data {
        /// Sender-local sequence number.
        seq: u64,
        /// The wrapped actor's message.
        msg: M,
    },
    /// Acknowledges receipt of the sender's `seq` (sent even for
    /// duplicates — an ack can be lost too).
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Pass-through for the inner actor's own timers (local, unacked).
    Timer(M),
    /// The wrapper's own resend timer (local only).
    RetryTick,
}

struct Pending<M> {
    msg: M,
    /// Recipients that have not acknowledged yet.
    waiting: Vec<u16>,
    attempts: u32,
    due: u64,
}

/// Wraps an [`Actor`], making its message delivery reliable under lossy
/// links: unacknowledged sends are retransmitted with exponential backoff
/// (see the module docs for semantics and determinism).
pub struct Reliable<A: Actor> {
    inner: A,
    policy: ResendPolicy,
    next_seq: u64,
    outbound: BTreeMap<u64, Pending<A::Msg>>,
    /// Delivered sequence numbers per sender, for duplicate suppression.
    seen: BTreeMap<u16, BTreeSet<u64>>,
    /// Virtual time of the earliest armed retry tick, if any.
    tick_at: Option<u64>,
    resends: u64,
    abandoned: u64,
}

impl<A: Actor> Reliable<A> {
    /// Wraps `inner` with the given retransmission policy.
    pub fn new(inner: A, policy: ResendPolicy) -> Self {
        assert!(policy.rto > 0, "a zero RTO would busy-loop");
        assert!(policy.max_attempts > 0, "at least the original attempt");
        Reliable {
            inner,
            policy,
            next_seq: 0,
            outbound: BTreeMap::new(),
            seen: BTreeMap::new(),
            tick_at: None,
            resends: 0,
            abandoned: 0,
        }
    }

    /// The wrapped actor.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The wrapped actor, mutably.
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Total retransmissions performed.
    pub fn resends(&self) -> u64 {
        self.resends
    }

    /// Messages dropped after exhausting the retry budget.
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Messages still awaiting at least one acknowledgement.
    pub fn unacked(&self) -> usize {
        self.outbound.len()
    }

    /// Runs `f` against the inner actor under a shadow context, then
    /// wraps its outbox in tracked `Data` envelopes and re-arms timers.
    fn drive_inner(
        &mut self,
        ctx: &mut Context<'_, ReliableMsg<A::Msg>>,
        f: impl FnOnce(&mut A, &mut Context<'_, A::Msg>),
    ) {
        let (me, n, now, depth) = (ctx.me(), ctx.n(), ctx.now(), ctx.depth());
        let (out, timers) = {
            let mut inner_ctx = Context::external(me, n, now, depth, ctx.rng());
            f(&mut self.inner, &mut inner_ctx);
            (inner_ctx.take_outbox(), inner_ctx.take_timers())
        };
        let now = now.as_units();
        for (dest, msg) in out {
            let seq = self.next_seq;
            self.next_seq += 1;
            let waiting: Vec<u16> = match dest {
                Dest::To(p) => vec![p.index() as u16],
                Dest::All => (0..n as u16).collect(),
            };
            self.outbound.insert(
                seq,
                Pending {
                    msg: msg.clone(),
                    waiting,
                    attempts: 0,
                    due: now + self.policy.rto,
                },
            );
            ctx.send_dest(dest, ReliableMsg::Data { seq, msg });
        }
        for (delay, msg) in timers {
            ctx.send_self_after(delay, ReliableMsg::Timer(msg));
        }
        self.arm_tick(ctx);
    }

    /// Arms a retry tick at the earliest outstanding deadline, unless one
    /// at least as early is already pending.
    fn arm_tick(&mut self, ctx: &mut Context<'_, ReliableMsg<A::Msg>>) {
        let Some(next_due) = self.outbound.values().map(|p| p.due).min() else {
            return;
        };
        let now = ctx.now().as_units();
        let at = next_due.max(now + 1);
        if self.tick_at.is_some_and(|t| t <= at) {
            return;
        }
        ctx.send_self_after(at - now, ReliableMsg::RetryTick);
        self.tick_at = Some(at);
    }

    fn on_retry_tick(&mut self, ctx: &mut Context<'_, ReliableMsg<A::Msg>>) {
        self.tick_at = None;
        let now = ctx.now().as_units();
        let due: Vec<u64> = self
            .outbound
            .iter()
            .filter(|(_, p)| p.due <= now)
            .map(|(seq, _)| *seq)
            .collect();
        for seq in due {
            let pending = self.outbound.get_mut(&seq).expect("collected above");
            pending.attempts += 1;
            if pending.attempts >= self.policy.max_attempts {
                self.abandoned += 1;
                self.outbound.remove(&seq);
                continue;
            }
            pending.due = now + (self.policy.rto << pending.attempts.min(self.policy.backoff_cap));
            let msg = pending.msg.clone();
            let waiting = pending.waiting.clone();
            for w in waiting {
                // Each retransmission is a brand-new send: the fault layer
                // draws a fresh, independent drop decision for it.
                if let Some(recorder) = self.inner.recorder_mut() {
                    recorder.record(EventKind::Resend { to: w });
                }
                ctx.send(
                    ProcessId::new(w as usize),
                    ReliableMsg::Data {
                        seq,
                        msg: msg.clone(),
                    },
                );
                self.resends += 1;
            }
        }
        self.arm_tick(ctx);
    }
}

impl<A: Actor> Actor for Reliable<A> {
    type Msg = ReliableMsg<A::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        self.drive_inner(ctx, |actor, inner_ctx| actor.on_start(inner_ctx));
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        match msg {
            ReliableMsg::Data { seq, msg } => {
                // Always ack — the previous ack may itself have been lost.
                ctx.send(from, ReliableMsg::Ack { seq: *seq });
                let fresh = self
                    .seen
                    .entry(from.index() as u16)
                    .or_default()
                    .insert(*seq);
                if fresh {
                    self.drive_inner(ctx, |actor, inner_ctx| {
                        actor.on_message(from, msg, inner_ctx)
                    });
                }
            }
            ReliableMsg::Ack { seq } => {
                if let Some(pending) = self.outbound.get_mut(seq) {
                    pending.waiting.retain(|w| *w != from.index() as u16);
                    if pending.waiting.is_empty() {
                        self.outbound.remove(seq);
                    }
                }
            }
            ReliableMsg::Timer(inner_msg) => {
                if from != ctx.me() {
                    return; // timers are local; discard forgeries
                }
                self.drive_inner(ctx, |actor, inner_ctx| {
                    actor.on_message(from, inner_msg, inner_ctx)
                });
            }
            ReliableMsg::RetryTick => {
                if from != ctx.me() {
                    return; // local only
                }
                self.on_retry_tick(ctx);
            }
        }
    }

    fn recorder_mut(&mut self) -> Option<&mut Recorder> {
        self.inner.recorder_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_simnet::{DelayModel, FaultSchedule, Simulation};

    /// Counts deliveries; replies once to every payload below 100.
    struct Echo {
        got: Vec<(ProcessId, u32)>,
    }

    impl Actor for Echo {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.me() == ProcessId::new(0) {
                for payload in [1, 2, 3] {
                    ctx.send(ProcessId::new(1), payload);
                }
            }
        }

        fn on_message(&mut self, from: ProcessId, msg: &u32, ctx: &mut Context<'_, u32>) {
            self.got.push((from, *msg));
            if *msg < 100 && ctx.me() == ProcessId::new(1) {
                ctx.send(from, msg + 100);
            }
        }
    }

    fn echo_pair() -> Vec<Reliable<Echo>> {
        (0..2)
            .map(|_| Reliable::new(Echo { got: Vec::new() }, ResendPolicy::default()))
            .collect()
    }

    fn payloads(node: &Reliable<Echo>) -> Vec<u32> {
        let mut p: Vec<u32> = node.inner().got.iter().map(|(_, m)| *m).collect();
        p.sort_unstable();
        p
    }

    #[test]
    fn lossless_runs_deliver_exactly_once_with_no_resends() {
        let mut sim = Simulation::builder(echo_pair())
            .seed(7)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .build();
        assert!(sim.run(10_000).quiescent);
        assert_eq!(payloads(sim.actor(ProcessId::new(1))), vec![1, 2, 3]);
        assert_eq!(payloads(sim.actor(ProcessId::new(0))), vec![101, 102, 103]);
        for node in sim.actors() {
            assert_eq!(node.resends(), 0, "no loss, no retries");
            assert_eq!(node.unacked(), 0, "everything acked");
        }
    }

    #[test]
    fn retries_draw_fresh_drop_decisions_under_sustained_loss() {
        // Fixed seed, every link drops with p = 0.5 for the whole run. If
        // retransmissions *shared* the original send's drop decision, a
        // dropped message could never get through and some payload would
        // be missing; fresh per-attempt decisions mean each retry is a new
        // coin flip, and the retry budget pushes everything through.
        let mut sim = Simulation::builder(echo_pair())
            .seed(31)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .faults(FaultSchedule::none().lossy_link(None, None, 0.5, 0.0))
            .build();
        assert!(sim.run(100_000).quiescent);
        assert!(
            sim.stats().dropped > 0,
            "the schedule must actually drop traffic"
        );
        let total_resends: u64 = sim.actors().iter().map(Reliable::resends).sum();
        assert!(total_resends > 0, "drops must trigger retransmission");
        assert_eq!(
            payloads(sim.actor(ProcessId::new(1))),
            vec![1, 2, 3],
            "every payload survives sustained 50% loss"
        );
        assert_eq!(payloads(sim.actor(ProcessId::new(0))), vec![101, 102, 103]);
        for node in sim.actors() {
            assert_eq!(node.abandoned(), 0, "budget is ample at p = 0.5");
        }
    }

    #[test]
    fn duplicate_deliveries_reach_the_inner_actor_once() {
        // Heavy duplication, no loss: the dedup layer must hand each
        // payload to the inner actor exactly once.
        let mut sim = Simulation::builder(echo_pair())
            .seed(5)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .faults(FaultSchedule::none().dup_all(0.9))
            .build();
        assert!(sim.run(100_000).quiescent);
        assert!(sim.stats().duplicated > 0, "duplication must fire");
        assert_eq!(payloads(sim.actor(ProcessId::new(1))), vec![1, 2, 3]);
        assert_eq!(payloads(sim.actor(ProcessId::new(0))), vec![101, 102, 103]);
    }

    #[test]
    fn the_retry_budget_caps_resends_to_a_dead_link() {
        // Everything 0 → 1 is dropped forever; the wrapper must give up
        // after max_attempts instead of retrying unboundedly.
        let policy = ResendPolicy {
            rto: 10,
            backoff_cap: 2,
            max_attempts: 4,
        };
        let nodes: Vec<Reliable<Echo>> = (0..2)
            .map(|_| Reliable::new(Echo { got: Vec::new() }, policy))
            .collect();
        let mut sim = Simulation::builder(nodes)
            .seed(3)
            .delay(DelayModel::Constant(5))
            .faults(FaultSchedule::none().lossy_link(
                Some(ProcessId::new(0)),
                Some(ProcessId::new(1)),
                1.0,
                0.0,
            ))
            .build();
        assert!(sim.run(100_000).quiescent, "giving up restores quiescence");
        let sender = sim.actor(ProcessId::new(0));
        assert_eq!(sender.abandoned(), 3, "all three payloads abandoned");
        assert_eq!(sender.unacked(), 0);
        // attempts 1..max_attempts-1 resend; the last tick abandons.
        assert_eq!(sender.resends(), 3 * u64::from(policy.max_attempts - 1));
        assert!(payloads(sim.actor(ProcessId::new(1))).is_empty());
    }
}
