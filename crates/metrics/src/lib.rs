//! Statistics and table rendering for the experiment harness.
//!
//! Three small tools:
//!
//! * [`Summary`] — streaming numeric summary (count / mean / min / max /
//!   percentiles) used for step counts and latencies.
//! * [`Counter`] — categorical frequency counts with fraction helpers, used
//!   for decision-path histograms.
//! * [`Table`] — plain-text table builder with aligned columns plus CSV
//!   output, used by the `dex-bench` binaries that regenerate the paper's
//!   tables and figures.
//!
//! # Examples
//!
//! ```
//! use dex_metrics::Summary;
//! let mut s = Summary::new();
//! for x in [1.0, 2.0, 3.0, 4.0] { s.add(x); }
//! assert_eq!(s.mean(), 2.5);
//! assert_eq!(s.min(), Some(1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod histogram;
mod summary;
mod table;

pub use counter::Counter;
pub use histogram::Histogram;
pub use summary::Summary;
pub use table::Table;
