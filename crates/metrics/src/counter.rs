//! Categorical frequency counts.

use std::collections::BTreeMap;

/// Frequency counts of categorical outcomes (e.g. decision paths).
///
/// Keys are kept in a `BTreeMap` so reports iterate in a stable order.
///
/// # Examples
///
/// ```
/// use dex_metrics::Counter;
/// let mut c = Counter::new();
/// c.add("1-step");
/// c.add("1-step");
/// c.add("fallback");
/// assert_eq!(c.count(&"1-step"), 2);
/// assert!((c.fraction(&"1-step") - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Counter<K: Ord> {
    counts: BTreeMap<K, u64>,
    total: u64,
}

impl<K: Ord> Default for Counter<K> {
    fn default() -> Self {
        Counter {
            counts: BTreeMap::new(),
            total: 0,
        }
    }
}

impl<K: Ord> Counter<K> {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Records one occurrence of `key`.
    pub fn add(&mut self, key: K) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `weight` occurrences of `key`.
    pub fn add_n(&mut self, key: K, weight: u64) {
        *self.counts.entry(key).or_insert(0) += weight;
        self.total += weight;
    }

    /// Occurrences of `key`.
    pub fn count(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Total occurrences across all keys.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `count(key) / total`, or 0 when empty.
    pub fn fraction(&self, key: &K) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count(key) as f64 / self.total as f64
    }

    /// Iterates over `(key, count)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, c)| (k, *c))
    }

    /// The most frequent key (smallest key on ties), if any.
    pub fn mode(&self) -> Option<&K> {
        self.counts
            .iter()
            .max_by(|(ka, ca), (kb, cb)| ca.cmp(cb).then_with(|| kb.cmp(ka)))
            .map(|(k, _)| k)
    }
}

impl<K: Ord> FromIterator<K> for Counter<K> {
    fn from_iter<T: IntoIterator<Item = K>>(iter: T) -> Self {
        let mut c = Counter::new();
        for k in iter {
            c.add(k);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_fractions() {
        let c: Counter<&str> = ["a", "b", "a", "a"].into_iter().collect();
        assert_eq!(c.count(&"a"), 3);
        assert_eq!(c.count(&"b"), 1);
        assert_eq!(c.count(&"z"), 0);
        assert_eq!(c.total(), 4);
        assert_eq!(c.fraction(&"a"), 0.75);
        assert_eq!(c.fraction(&"z"), 0.0);
    }

    #[test]
    fn empty_counter() {
        let c: Counter<u8> = Counter::new();
        assert_eq!(c.total(), 0);
        assert_eq!(c.fraction(&1), 0.0);
        assert_eq!(c.mode(), None);
    }

    #[test]
    fn mode_breaks_ties_toward_smaller_key() {
        let mut c = Counter::new();
        c.add_n(2u8, 5);
        c.add_n(1u8, 5);
        assert_eq!(c.mode(), Some(&1));
        c.add(2);
        assert_eq!(c.mode(), Some(&2));
    }

    #[test]
    fn iteration_is_key_ordered() {
        let c: Counter<u8> = [3, 1, 2, 1].into_iter().collect();
        let keys: Vec<u8> = c.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }
}
