//! Integer-bucket histograms with ASCII rendering.

use std::collections::BTreeMap;

/// A histogram over small non-negative integer outcomes (step counts,
/// rounds), with an ASCII bar renderer for the figure binaries.
///
/// # Examples
///
/// ```
/// use dex_metrics::Histogram;
/// let mut h = Histogram::new();
/// h.add(1);
/// h.add(1);
/// h.add(4);
/// assert_eq!(h.count(1), 2);
/// assert!((h.mean() - 2.0).abs() < 1e-12);
/// assert!(h.render(10).contains('#'));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn add(&mut self, value: u32) {
        *self.buckets.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Occurrences of `value`.
    pub fn count(&self, value: u32) -> u64 {
        self.buckets.get(&value).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self.buckets.iter().map(|(v, c)| u64::from(*v) * c).sum();
        sum as f64 / self.total as f64
    }

    /// The largest observed value.
    pub fn max(&self) -> Option<u32> {
        self.buckets.keys().next_back().copied()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in &other.buckets {
            *self.buckets.entry(*v).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Renders horizontal ASCII bars, one line per bucket, scaled so the
    /// fullest bucket spans `width` characters.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        let peak = self.buckets.values().copied().max().unwrap_or(0).max(1);
        for (value, count) in &self.buckets {
            let bar = (count * width as u64).div_ceil(peak) as usize;
            out.push_str(&format!(
                "{value:>4} | {:<width$} {count} ({:.1}%)\n",
                "#".repeat(bar),
                100.0 * *count as f64 / self.total.max(1) as f64,
            ));
        }
        out
    }
}

impl Extend<u32> for Histogram {
    fn extend<T: IntoIterator<Item = u32>>(&mut self, iter: T) {
        for v in iter {
            self.add(v);
        }
    }
}

impl FromIterator<u32> for Histogram {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut h = Histogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_mean() {
        let h: Histogram = [1, 1, 2, 4].into_iter().collect();
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(h.max(), Some(4));
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), None);
        assert_eq!(h.render(10), "");
    }

    #[test]
    fn render_scales_to_peak() {
        let h: Histogram = [1, 1, 1, 1, 2].into_iter().collect();
        let text = h.render(20);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].matches('#').count() == 20, "{text}");
        assert!(lines[1].matches('#').count() < 20);
        assert!(lines[0].contains("80.0%"));
    }

    #[test]
    fn merge_adds_buckets() {
        let mut a: Histogram = [1, 2].into_iter().collect();
        let b: Histogram = [2, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(2), 2);
    }
}
