//! Numeric sample summaries.

use std::cell::OnceCell;

/// A summary of numeric samples: count, mean, min, max, percentiles.
///
/// Samples are retained (sorted lazily) so exact percentiles are available;
/// experiment batches are small enough (≤ 10⁶ samples) for this to be the
/// right trade-off. The sorted order is computed once on the first
/// [`quantile`](Self::quantile) call and cached until the next mutation, so
/// reading many percentiles of a finished batch sorts exactly once.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
    /// Sorted copy of `samples`, filled lazily by `quantile` and cleared by
    /// every mutation (`add` / `merge`). `OnceCell` keeps the type `Send`
    /// (batches are built inside worker threads and moved out by value).
    sorted: OnceCell<Vec<f64>>,
}

/// Equality is over the samples only — whether the sort cache happens to be
/// populated is not an observable property.
impl PartialEq for Summary {
    fn eq(&self, other: &Self) -> bool {
        self.samples == other.samples
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one sample. Non-finite samples are rejected.
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinite input — those indicate a harness bug, not
    /// data.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite sample {x}");
        self.samples.push(x);
        self.sorted.take();
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean; 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// The `q`-quantile (nearest-rank), `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return None;
        }
        let sorted = self.sorted.get_or_init(|| {
            let mut sorted = self.samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            sorted
        });
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(sorted[idx])
    }

    /// Sample standard deviation; 0 with fewer than two samples.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>()
            / (self.samples.len() - 1) as f64;
        var.sqrt()
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted.take();
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn basic_statistics() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.stddev() - 2.138).abs() < 0.01);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let s: Summary = (1..=100).map(f64::from).collect();
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        assert_eq!(s.quantile(0.5), Some(51.0));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_is_rejected() {
        Summary::new().add(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_range_checked() {
        let s: Summary = [1.0].into_iter().collect();
        let _ = s.quantile(1.5);
    }

    #[test]
    fn quantile_cache_is_invalidated_by_add_and_merge() {
        let mut s: Summary = [3.0, 1.0, 2.0].into_iter().collect();
        assert_eq!(s.quantile(1.0), Some(3.0)); // populates the cache
        s.add(10.0);
        assert_eq!(s.quantile(1.0), Some(10.0));
        assert_eq!(s.quantile(0.0), Some(1.0));
        let other: Summary = [0.5].into_iter().collect();
        s.merge(&other);
        assert_eq!(s.quantile(0.0), Some(0.5));
    }

    #[test]
    fn clones_and_equality_ignore_cache_state() {
        let warm: Summary = [2.0, 1.0].into_iter().collect();
        let _ = warm.quantile(0.5);
        let cold: Summary = [2.0, 1.0].into_iter().collect();
        assert_eq!(warm, cold);
        let cloned = warm.clone();
        assert_eq!(cloned.quantile(0.5), Some(2.0));
        assert_eq!(cloned, warm);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let b: Summary = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.mean(), 2.5);
    }
}
