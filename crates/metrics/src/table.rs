//! Plain-text and CSV table rendering.

use core::fmt::Write as _;

/// A simple table builder producing aligned plain-text output (for the
/// table/figure regeneration binaries) and CSV (for plotting elsewhere).
///
/// # Examples
///
/// ```
/// use dex_metrics::Table;
/// let mut t = Table::new(vec!["algo".into(), "steps".into()]);
/// t.row(vec!["dex-freq".into(), "1.2".into()]);
/// let text = t.render();
/// assert!(text.contains("dex-freq"));
/// assert!(t.to_csv().starts_with("algo,steps\n"));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics on an empty header list.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned plain-text table with a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                let _ = write!(out, "{}{}", cell, " ".repeat(pad));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (cells containing commas or quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            let joined: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&joined.join(","));
            out.push('\n');
        };
        line(&self.headers, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "123456".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // "value" column starts at the same offset in every line.
        let offset = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1'), Some(offset));
        assert_eq!(lines[3].find("123456"), Some(offset));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn emptiness() {
        let t = Table::new(vec!["a".into()]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
