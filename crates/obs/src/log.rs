//! Chunked-arena event storage.
//!
//! The log is a sequence of fixed-capacity chunks. Pushing an event is an
//! index bump into the tail chunk; when a chunk fills, a new one is
//! preallocated in a single (rare, amortized) allocation. Existing events
//! are never moved or reallocated, so `push` never copies the log and the
//! hot path — one `Vec::push` into spare capacity — does not allocate.

use crate::event::Event;

/// Events per arena chunk. 4096 × ~32 B ≈ 128 KiB per chunk; a full DEX
/// run for n ≤ 16 fits comfortably in the first chunk.
pub const CHUNK_EVENTS: usize = 4096;

/// An append-only event arena with O(1) non-moving push.
#[derive(Debug, Default)]
pub struct EventLog {
    chunks: Vec<Vec<Event>>,
}

impl EventLog {
    /// An empty log with no storage reserved (used by disabled recorders,
    /// which never push).
    pub fn new() -> Self {
        EventLog { chunks: Vec::new() }
    }

    /// An empty log with the first chunk preallocated, so the first
    /// [`CHUNK_EVENTS`] pushes perform zero allocations.
    pub fn preallocated() -> Self {
        EventLog {
            chunks: vec![Vec::with_capacity(CHUNK_EVENTS)],
        }
    }

    /// Appends an event. Amortized O(1); allocates only on chunk rollover
    /// (every [`CHUNK_EVENTS`] pushes).
    #[inline]
    pub fn push(&mut self, event: Event) {
        match self.chunks.last_mut() {
            Some(tail) if tail.len() < CHUNK_EVENTS => tail.push(event),
            _ => {
                let mut tail = Vec::with_capacity(CHUNK_EVENTS);
                tail.push(event);
                self.chunks.push(tail);
            }
        }
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(Vec::len).sum()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.chunks.iter().all(Vec::is_empty)
    }

    /// Iterates events in record order.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.chunks.iter().flatten()
    }

    /// Copies the log out into one contiguous vector (record order).
    pub fn to_vec(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.len());
        for chunk in &self.chunks {
            out.extend_from_slice(chunk);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(at: u64) -> Event {
        Event {
            at,
            depth: 0,
            kind: EventKind::Send { to: 0 },
        }
    }

    #[test]
    fn push_and_iterate_in_order() {
        let mut log = EventLog::preallocated();
        for i in 0..10 {
            log.push(ev(i));
        }
        assert_eq!(log.len(), 10);
        let ats: Vec<u64> = log.iter().map(|e| e.at).collect();
        assert_eq!(ats, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rollover_preserves_order_and_capacity_invariant() {
        let mut log = EventLog::preallocated();
        let total = CHUNK_EVENTS * 2 + 7;
        for i in 0..total {
            log.push(ev(i as u64));
        }
        assert_eq!(log.len(), total);
        assert_eq!(log.to_vec().len(), total);
        assert_eq!(log.to_vec()[total - 1].at, (total - 1) as u64);
        // No chunk ever exceeds its fixed capacity (no reallocation).
        for chunk in &log.chunks {
            assert!(chunk.len() <= CHUNK_EVENTS);
            assert_eq!(chunk.capacity(), CHUNK_EVENTS);
        }
    }

    #[test]
    fn empty_log_reserves_nothing() {
        let log = EventLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert_eq!(log.chunks.capacity(), 0);
    }
}
