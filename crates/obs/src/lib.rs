//! `dex-obs` — structured trace/observability layer.
//!
//! A zero-allocation-on-hot-path event log ([`EventLog`]: a preallocated
//! chunked arena of compact, `Copy` [`Event`] records) behind a per-process
//! [`Recorder`] that protocol state machines thread through their hot
//! paths. A disabled recorder costs one branch per call site; an active
//! one costs an index bump into preallocated storage.
//!
//! On top of the logs sits a trace analyzer + invariant [`checker`]
//! replaying finished runs against the paper's lemma-derived runtime
//! invariants, and a deterministic [`json`] artifact writer (same seed ⇒
//! byte-identical `results/trace_<seed>.json`).
//!
//! Dependency direction: everything else depends on `dex-obs`, never the
//! reverse — the crate only knows about codes (`u64` value hashes via
//! [`obs_code`]) and process indices, not protocol types.

#![warn(missing_docs)]

mod event;
mod log;
mod recorder;

pub mod checker;
pub mod json;
pub mod summary;

pub use checker::{
    check, ChaosMeta, CheckReport, PipelineMeta, ProcessTrace, RunTrace, SchemeRules, TraceMeta,
    Violation,
};
pub use event::{obs_code, Event, EventKind, PredTag, Scheme, ViewTag};
pub use log::{EventLog, CHUNK_EVENTS};
pub use recorder::Recorder;
pub use summary::{DecideRecord, DecideSummary};
