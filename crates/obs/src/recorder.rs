//! The per-process recorder threaded through protocol state machines.
//!
//! A [`Recorder`] is either *disabled* (the default: every call is a no-op
//! and no storage is reserved, so instrumented code costs one branch on the
//! hot path) or *active* (events are stamped with the current virtual
//! clock/depth and appended to a preallocated [`EventLog`]).
//!
//! The network runtime owns the clock: it calls
//! [`set_clock`](Recorder::set_clock) before handing a delivery to the
//! actor, so protocol code just calls [`record`](Recorder::record) with an
//! [`EventKind`] and never thinks about time.

use crate::checker::ProcessTrace;
use crate::event::{Event, EventKind};
use crate::log::EventLog;

/// A per-process event recorder.
#[derive(Debug, Default)]
pub struct Recorder {
    active: bool,
    me: u16,
    at: u64,
    depth: u32,
    log: EventLog,
}

impl Recorder {
    /// A disabled recorder: [`record`](Self::record) is a no-op, nothing is
    /// allocated. This is what instrumented state machines start with.
    pub fn disabled() -> Self {
        Recorder::default()
    }

    /// An active recorder for process `me`, with the log's first chunk
    /// preallocated.
    pub fn new(me: u16) -> Self {
        Recorder {
            active: true,
            me,
            at: 0,
            depth: 0,
            log: EventLog::preallocated(),
        }
    }

    /// Whether events are being captured.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// `Some(self)` when active — lets runtimes skip clock stamping for
    /// disabled recorders without a separate flag check at each call site.
    #[inline]
    pub fn active_mut(&mut self) -> Option<&mut Recorder> {
        if self.active {
            Some(self)
        } else {
            None
        }
    }

    /// The process this recorder belongs to.
    pub fn me(&self) -> u16 {
        self.me
    }

    /// Stamps the clock used for subsequent [`record`](Self::record) calls.
    /// Called by the network runtime at each delivery boundary.
    #[inline]
    pub fn set_clock(&mut self, at: u64, depth: u32) {
        self.at = at;
        self.depth = depth;
    }

    /// Appends an event stamped with the current clock. No-op when
    /// disabled.
    #[inline]
    pub fn record(&mut self, kind: EventKind) {
        if self.active {
            self.log.push(Event {
                at: self.at,
                depth: self.depth,
                kind,
            });
        }
    }

    /// Appends an event with an explicit clock (used by runtimes for
    /// send/deliver stamping where the event's depth differs from the
    /// handler's). No-op when disabled.
    #[inline]
    pub fn record_at(&mut self, at: u64, depth: u32, kind: EventKind) {
        if self.active {
            self.log.push(Event { at, depth, kind });
        }
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether no events have been captured.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Copies the captured events out as a [`ProcessTrace`] for checking
    /// and serialization.
    pub fn trace(&self) -> ProcessTrace {
        ProcessTrace {
            id: self.me,
            events: self.log.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Scheme;

    #[test]
    fn disabled_recorder_is_inert() {
        let mut r = Recorder::disabled();
        assert!(!r.is_active());
        r.record(EventKind::Send { to: 3 });
        r.record_at(9, 1, EventKind::Deliver { from: 1 });
        assert!(r.is_empty());
        assert!(r.active_mut().is_none());
    }

    #[test]
    fn active_recorder_stamps_clock() {
        let mut r = Recorder::new(2);
        assert!(r.is_active());
        r.set_clock(10, 1);
        r.record(EventKind::Decide {
            scheme: Scheme::OneStep,
            code: 7,
        });
        r.record_at(11, 2, EventKind::Send { to: 0 });
        let t = r.trace();
        assert_eq!(t.id, 2);
        assert_eq!(t.events.len(), 2);
        assert_eq!((t.events[0].at, t.events[0].depth), (10, 1));
        assert_eq!((t.events[1].at, t.events[1].depth), (11, 2));
    }
}
