//! Trace replay and invariant checking.
//!
//! The checker consumes a [`RunTrace`] — the per-process event logs of one
//! finished run plus metadata — and verifies runtime invariants derived
//! from the paper's lemmas (LT1/LT2 termination step counts, LA3/LA4
//! agreement, LU5 unanimity) and from the Identical Broadcast
//! specification:
//!
//! * **single-decision** — no correct process records two `Decide` events.
//! * **agreement** — all correct processes' decided codes are equal.
//! * **step-scheme** — a decision's causal depth matches its scheme:
//!   1-step ⇔ depth 1, 2-step ⇔ depth 2, fallback ⇒ depth ≥ 3 under DEX
//!   rules (the underlying consensus costs extra steps after the 2-step
//!   IDB exchange), depth ≥ 2 under [`SchemeRules::Opaque`].
//! * **one-step-p1 / two-step-p2** — an expedited decision implies the
//!   corresponding legality predicate actually held on the view
//!   reconstructed from the `ViewSet` events preceding the decision
//!   (Fig. 1 lines 7–8 and 16–17). Checked only when the rules are known
//!   ([`SchemeRules::Frequency`] / [`SchemeRules::Privileged`]).
//! * **predicate-witness** — the recorded `Predicate` snapshot nearest
//!   before an expedited decision says `held` and agrees with the
//!   reconstructed tally (the recorder and the replay must not diverge).
//! * **idb-agreement** — no two correct processes accept different values
//!   for the same broadcast instance.
//! * **idb-validity** — what correct processes accept from a correct
//!   origin is what that origin recorded sending (`IdbInit` on itself).
//! * **log-agreement** — replication only: no two correct replicas commit
//!   different commands in the same slot.
//!
//! When the run carried a fault schedule ([`TraceMeta::chaos`] is set) two
//! further invariants apply — appended conditionally so fault-free
//! artifacts keep their exact byte layout:
//!
//! * **crash-silence** — a correct process records no network activity
//!   (`Send`/`Deliver`) inside any of its crash windows: the simulator
//!   must actually have silenced it.
//! * **termination-after-heal** — when the schedule is *eventually clean*
//!   (every crash recovers, drops confined to Byzantine-incident links),
//!   every correct process decides: partitions and crash windows are just
//!   long-but-finite delays, so GST-style liveness must hold after the
//!   last heal. Not asserted for unclean schedules — losing messages
//!   between correct processes genuinely forfeits one-shot liveness
//!   (safety is still checked unconditionally).
//! * **recovered-prefix** — replication only: every slot a recovering or
//!   lagging replica adopted through the catch-up protocol (`CatchUp`
//!   events) carries exactly the command some correct replica committed
//!   for that slot — a restarted replica re-derives the cluster's log,
//!   never invents one.

use crate::event::{Event, EventKind, PredTag, Scheme, ViewTag};
use std::collections::{BTreeMap, BTreeSet};

/// Which legality pair governed the traced run — tells the checker how to
/// re-evaluate P1/P2 from a reconstructed view.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SchemeRules {
    /// `P_freq`: P1 ⇔ margin > 4t, P2 ⇔ margin > 2t (on quorate views).
    Frequency,
    /// `P_prv(m)`: P1 ⇔ #m > 3t, P2 ⇔ #m > 2t.
    Privileged {
        /// Code of the privileged value `m`.
        m_code: u64,
    },
    /// Rules unknown to the checker (baselines); predicate reconstruction
    /// is skipped, structural invariants still apply.
    Opaque,
}

impl SchemeRules {
    /// Stable label used in the JSON artifact.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeRules::Frequency => "frequency",
            SchemeRules::Privileged { .. } => "privileged",
            SchemeRules::Opaque => "opaque",
        }
    }
}

/// Fault-schedule metadata for a chaos run.
///
/// Present only when a non-empty schedule was installed — its absence
/// keeps fault-free artifacts byte-identical to pre-chaos builds (no new
/// JSON keys, no new checker rows).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChaosMeta {
    /// The last instant at which a timed disturbance ends (partition heal,
    /// crash recovery, lossy-window close); `0` when the schedule has no
    /// timed windows.
    pub last_heal: u64,
    /// Whether GST-style liveness is assertable: every crash recovers and
    /// every probabilistic drop is confined to links touching a process
    /// already counted Byzantine (drops on correct↔correct links are real
    /// losses, and a one-shot protocol cannot promise termination without
    /// reliable links between correct processes).
    pub eventually_clean: bool,
    /// Crash windows `(process, from, until)`; `until = None` means the
    /// process never recovers.
    pub crashes: Vec<(u16, u64, Option<u64>)>,
}

/// Run metadata carried alongside the event logs.
#[derive(Clone, Debug)]
pub struct TraceMeta {
    /// The run's seed.
    pub seed: u64,
    /// System size.
    pub n: u16,
    /// Resilience bound.
    pub t: u16,
    /// Algorithm label (e.g. `dex-freq`).
    pub algo: String,
    /// How to re-evaluate the legality predicates.
    pub rules: SchemeRules,
    /// Indices of faulty processes (their logs are not trusted and are
    /// excluded from every invariant).
    pub faulty: Vec<u16>,
    /// Human-readable decoding of value codes, sorted by code.
    pub legend: Vec<(u64, String)>,
    /// Fault-schedule metadata; `None` for fault-free runs (keeps their
    /// artifacts byte-identical to pre-chaos builds).
    pub chaos: Option<ChaosMeta>,
    /// Pipelined-replication metadata; `None` for single-shot and
    /// sequential runs (keeps their artifacts byte-identical to
    /// pre-pipeline builds). When present, the pipeline invariants
    /// (`window-bound`, `slot-reuse-isolation`) are evaluated and listed.
    pub pipeline: Option<PipelineMeta>,
}

/// Metadata of a pipelined replication run (see `dex-replication`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineMeta {
    /// The pipeline window `W`: slots a replica may keep in flight past
    /// its committed floor.
    pub window: u64,
    /// Client values batched into each slot's proposal.
    pub batch: u64,
    /// Total payload bytes the network carried during the run (simnet's
    /// `bytes_on_wire` counter) — the wire-cost side of the throughput
    /// story this artifact documents.
    pub bytes_on_wire: u64,
    /// Sent messages per wire class `[init, echo, batch, other]` — the
    /// four counters partition the run's total sends exactly, so an
    /// aggregated artifact documents where its wire budget went.
    pub sent_by_class: [u64; 4],
    /// Echo entries that travelled inside batch messages instead of as
    /// individual echoes (`0` for unaggregated runs).
    pub echoes_batched: u64,
}

/// One process's recorded events.
#[derive(Clone, Debug, Default)]
pub struct ProcessTrace {
    /// The process index.
    pub id: u16,
    /// Events in record order.
    pub events: Vec<Event>,
}

/// A complete run: metadata plus one trace per process.
#[derive(Clone, Debug)]
pub struct RunTrace {
    /// Run metadata.
    pub meta: TraceMeta,
    /// Per-process traces, sorted by process id.
    pub processes: Vec<ProcessTrace>,
}

/// One invariant violation found by the checker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// The process whose trace exhibits the failure.
    pub process: u16,
    /// Deterministic human-readable context.
    pub detail: String,
}

/// The checker's verdict: how many checks ran per invariant, and every
/// violation found.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// `(invariant, number of individual checks performed)`, fixed order.
    pub checks: Vec<(&'static str, usize)>,
    /// All violations, in deterministic order.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// Whether every invariant held.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total number of individual checks performed.
    pub fn total_checks(&self) -> usize {
        self.checks.iter().map(|(_, c)| c).sum()
    }
}

/// A view reconstructed from `ViewSet` events: first value wins per origin.
#[derive(Debug, Default)]
struct ReplayView {
    /// origin → code (first occurrence).
    entries: BTreeMap<u16, u64>,
}

impl ReplayView {
    fn set_first(&mut self, origin: u16, code: u64) {
        self.entries.entry(origin).or_insert(code);
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Tally: code → occurrences, deterministic order.
    fn counts(&self) -> BTreeMap<u64, usize> {
        let mut counts = BTreeMap::new();
        for code in self.entries.values() {
            *counts.entry(*code).or_insert(0) += 1;
        }
        counts
    }

    /// `(top_count, second_count, top_code)` of the tally; zeroes on empty.
    fn top2(&self) -> (usize, usize, u64) {
        let mut top = (0usize, 0u64);
        let mut second = 0usize;
        for (code, count) in self.counts() {
            if count > top.0 {
                second = top.0;
                top = (count, code);
            } else if count > second {
                second = count;
            }
        }
        (top.0, second, top.1)
    }

    fn count_of(&self, code: u64) -> usize {
        self.entries.values().filter(|c| **c == code).count()
    }
}

/// Replays `trace` up to (not including) event index `end`, reconstructing
/// the view tagged `tag`.
fn replay_view(trace: &ProcessTrace, tag: ViewTag, end: usize) -> ReplayView {
    let mut view = ReplayView::default();
    for e in &trace.events[..end] {
        if let EventKind::ViewSet {
            view: v,
            origin,
            code,
        } = e.kind
        {
            if v == tag {
                view.set_first(origin, code);
            }
        }
    }
    view
}

/// Finds the last `Predicate` event for `pred` strictly before `end`.
fn last_predicate(trace: &ProcessTrace, pred: PredTag, end: usize) -> Option<&Event> {
    trace.events[..end]
        .iter()
        .rev()
        .find(|e| matches!(e.kind, EventKind::Predicate { pred: p, .. } if p == pred))
}

/// Checks every invariant on `run`; returns counts and violations.
pub fn check(run: &RunTrace) -> CheckReport {
    let mut report = CheckReport::default();
    let n = run.meta.n as usize;
    let t = run.meta.t as usize;
    let quorum = n - t;
    let faulty: BTreeSet<u16> = run.meta.faulty.iter().copied().collect();
    let correct: Vec<&ProcessTrace> = run
        .processes
        .iter()
        .filter(|p| !faulty.contains(&p.id))
        .collect();

    let mut single_decision = 0usize;
    let mut agreement = 0usize;
    let mut step_scheme = 0usize;
    let mut one_step_p1 = 0usize;
    let mut two_step_p2 = 0usize;
    let mut predicate_witness = 0usize;
    let mut idb_agreement = 0usize;
    let mut idb_validity = 0usize;
    let mut log_agreement = 0usize;
    let mut violations = Vec::new();

    // Per-process walk: decisions, step counts, predicate reconstruction.
    let mut first_decides: Vec<(u16, u64)> = Vec::new();
    for tr in &correct {
        let decides: Vec<(usize, &Event)> = tr
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.kind, EventKind::Decide { .. }))
            .collect();

        single_decision += 1;
        if decides.len() > 1 {
            violations.push(Violation {
                invariant: "single-decision",
                process: tr.id,
                detail: format!("{} Decide events recorded", decides.len()),
            });
        }

        for (idx, event) in decides {
            let (scheme, code) = match event.kind {
                EventKind::Decide { scheme, code } => (scheme, code),
                _ => unreachable!("filtered on Decide"),
            };
            if first_decides.iter().all(|(id, _)| *id != tr.id) {
                first_decides.push((tr.id, code));
            }

            // Step counts match the decision scheme (LT1/LT2).
            step_scheme += 1;
            let dex_rules = run.meta.rules != SchemeRules::Opaque;
            let depth_ok = match scheme {
                Scheme::OneStep => event.depth == 1,
                Scheme::TwoStep => event.depth == 2,
                Scheme::Fallback => event.depth >= if dex_rules { 3 } else { 2 },
            };
            if !depth_ok {
                violations.push(Violation {
                    invariant: "step-scheme",
                    process: tr.id,
                    detail: format!(
                        "{} decision at causal depth {}",
                        scheme.label(),
                        event.depth
                    ),
                });
            }

            // Expedited decisions imply the predicate held on the recorded
            // snapshot — re-evaluated from first principles.
            if dex_rules {
                let (tag, pred) = match scheme {
                    Scheme::OneStep => (ViewTag::J1, PredTag::P1),
                    Scheme::TwoStep => (ViewTag::J2, PredTag::P2),
                    Scheme::Fallback => continue,
                };
                let invariant = match pred {
                    PredTag::P1 => "one-step-p1",
                    PredTag::P2 => "two-step-p2",
                };
                match pred {
                    PredTag::P1 => one_step_p1 += 1,
                    PredTag::P2 => two_step_p2 += 1,
                }
                let view = replay_view(tr, tag, idx);
                let (top, second, top_code) = view.top2();
                let threshold_ok = match (&run.meta.rules, pred) {
                    (SchemeRules::Frequency, PredTag::P1) => top - second > 4 * t,
                    (SchemeRules::Frequency, PredTag::P2) => top - second > 2 * t,
                    (SchemeRules::Privileged { m_code }, PredTag::P1) => {
                        view.count_of(*m_code) > 3 * t
                    }
                    (SchemeRules::Privileged { m_code }, PredTag::P2) => {
                        view.count_of(*m_code) > 2 * t
                    }
                    (SchemeRules::Opaque, _) => unreachable!("dex_rules checked"),
                };
                let decided_ok = match &run.meta.rules {
                    SchemeRules::Frequency => code == top_code,
                    SchemeRules::Privileged { m_code } => code == *m_code,
                    SchemeRules::Opaque => unreachable!("dex_rules checked"),
                };
                if view.len() < quorum || !threshold_ok || !decided_ok {
                    violations.push(Violation {
                        invariant,
                        process: tr.id,
                        detail: format!(
                            "{} held on replayed {}? |J|={} (quorum {}), top {}x{:016x}, \
                             second {}, decided {:016x}",
                            pred.label(),
                            tag.label(),
                            view.len(),
                            quorum,
                            top,
                            top_code,
                            second,
                            code
                        ),
                    });
                }

                // The recorder's own snapshot must exist, say `held`, and
                // agree with the replay.
                predicate_witness += 1;
                match last_predicate(tr, pred, idx) {
                    Some(w) => {
                        if let EventKind::Predicate {
                            held,
                            len,
                            top_count,
                            second_count,
                            top_code: w_top,
                            ..
                        } = w.kind
                        {
                            let tally_ok = len as usize == view.len()
                                && top_count as usize == top
                                && second_count as usize == second
                                && (top <= second || w_top == top_code);
                            if !held || !tally_ok {
                                violations.push(Violation {
                                    invariant: "predicate-witness",
                                    process: tr.id,
                                    detail: format!(
                                        "recorded {} snapshot (held={held}, |J|={len}, \
                                         top {top_count}, second {second_count}) \
                                         disagrees with replay (|J|={}, top {}, second {})",
                                        pred.label(),
                                        view.len(),
                                        top,
                                        second
                                    ),
                                });
                            }
                        }
                    }
                    None => violations.push(Violation {
                        invariant: "predicate-witness",
                        process: tr.id,
                        detail: format!(
                            "no {} evaluation recorded before the {} decision",
                            pred.label(),
                            scheme.label()
                        ),
                    }),
                }
            }
        }
    }

    // Agreement (LA3/LA4): all first decisions carry the same code.
    if let Some((ref_id, ref_code)) = first_decides.first().copied() {
        for (id, code) in &first_decides[1..] {
            agreement += 1;
            if *code != ref_code {
                violations.push(Violation {
                    invariant: "agreement",
                    process: *id,
                    detail: format!(
                        "decided {:016x} but process {} decided {:016x}",
                        code, ref_id, ref_code
                    ),
                });
            }
        }
    }

    // IDB agreement + validity on accepted values.
    // origin → (first accepting process, code).
    let mut accepted: BTreeMap<u16, (u16, u64)> = BTreeMap::new();
    for tr in &correct {
        for e in &tr.events {
            if let EventKind::IdbAccept { origin, code } = e.kind {
                idb_agreement += 1;
                match accepted.get(&origin) {
                    None => {
                        accepted.insert(origin, (tr.id, code));
                    }
                    Some((first, ref_code)) if *ref_code != code => {
                        violations.push(Violation {
                            invariant: "idb-agreement",
                            process: tr.id,
                            detail: format!(
                                "accepted {:016x} from origin {} but process {} \
                                 accepted {:016x}",
                                code, origin, first, ref_code
                            ),
                        });
                    }
                    Some(_) => {}
                }
            }
        }
    }
    for (origin, (_, code)) in &accepted {
        if faulty.contains(origin) {
            continue; // validity says nothing about Byzantine origins
        }
        let Some(origin_tr) = correct.iter().find(|tr| tr.id == *origin) else {
            continue;
        };
        let sent = origin_tr.events.iter().find_map(|e| match e.kind {
            EventKind::IdbInit { origin: o, code } if o == *origin => Some(code),
            _ => None,
        });
        idb_validity += 1;
        match sent {
            Some(sent_code) if sent_code == *code => {}
            Some(sent_code) => violations.push(Violation {
                invariant: "idb-validity",
                process: *origin,
                detail: format!(
                    "correct origin sent {:016x} but {:016x} was accepted",
                    sent_code, code
                ),
            }),
            None => violations.push(Violation {
                invariant: "idb-validity",
                process: *origin,
                detail: "value accepted from a correct origin that recorded no IdbInit".to_string(),
            }),
        }
    }

    // Replicated-log agreement: slot → (first committing replica, code).
    let mut committed: BTreeMap<u32, (u16, u64)> = BTreeMap::new();
    for tr in &correct {
        for e in &tr.events {
            if let EventKind::Commit { slot, code } = e.kind {
                log_agreement += 1;
                match committed.get(&slot) {
                    None => {
                        committed.insert(slot, (tr.id, code));
                    }
                    Some((first, ref_code)) if *ref_code != code => {
                        violations.push(Violation {
                            invariant: "log-agreement",
                            process: tr.id,
                            detail: format!(
                                "slot {} committed {:016x} but replica {} \
                                 committed {:016x}",
                                slot, code, first, ref_code
                            ),
                        });
                    }
                    Some(_) => {}
                }
            }
        }
    }

    // Chaos invariants — evaluated (and listed in the report) only when a
    // fault schedule was active, so fault-free artifacts are unchanged.
    let mut crash_silence = 0usize;
    let mut termination_after_heal = 0usize;
    let mut recovered_prefix = 0usize;
    if let Some(chaos) = &run.meta.chaos {
        for (p, from, until) in &chaos.crashes {
            let Some(tr) = correct.iter().find(|tr| tr.id == *p) else {
                continue; // Byzantine victim: its log is untrusted anyway
            };
            crash_silence += 1;
            let end = until.unwrap_or(u64::MAX);
            if let Some(e) = tr.events.iter().find(|e| {
                matches!(e.kind, EventKind::Send { .. } | EventKind::Deliver { .. })
                    && e.at >= *from
                    && e.at < end
            }) {
                let window = match until {
                    Some(u) => format!("[{from}, {u})"),
                    None => format!("[{from}, ∞)"),
                };
                violations.push(Violation {
                    invariant: "crash-silence",
                    process: *p,
                    detail: format!("network event at t={} inside crash window {}", e.at, window),
                });
            }
        }
        if chaos.eventually_clean {
            for tr in &correct {
                termination_after_heal += 1;
                let decided = tr
                    .events
                    .iter()
                    .any(|e| matches!(e.kind, EventKind::Decide { .. }));
                if !decided {
                    violations.push(Violation {
                        invariant: "termination-after-heal",
                        process: tr.id,
                        detail: format!(
                            "no decision recorded although every disturbance ended by t={}",
                            chaos.last_heal
                        ),
                    });
                }
            }
        }

        // Catch-up adoptions must re-derive the cluster's log, byte for
        // byte: an adopted slot whose command differs from (or lacks) a
        // correct replica's commit means recovery invented history.
        for tr in &correct {
            for e in &tr.events {
                if let EventKind::CatchUp { slot, code } = e.kind {
                    recovered_prefix += 1;
                    match committed.get(&slot) {
                        Some((_, ref_code)) if *ref_code == code => {}
                        Some((first, ref_code)) => violations.push(Violation {
                            invariant: "recovered-prefix",
                            process: tr.id,
                            detail: format!(
                                "caught up slot {} as {:016x} but replica {} \
                                 committed {:016x}",
                                slot, code, first, ref_code
                            ),
                        }),
                        None => violations.push(Violation {
                            invariant: "recovered-prefix",
                            process: tr.id,
                            detail: format!(
                                "caught up slot {} that no correct replica committed",
                                slot
                            ),
                        }),
                    }
                }
            }
        }
    }

    // Pipeline invariants — evaluated (and listed in the report) only for
    // pipelined runs, so sequential artifacts are unchanged.
    let mut window_bound = 0usize;
    let mut slot_reuse_isolation = 0usize;
    if let Some(pipeline) = &run.meta.pipeline {
        // A crash-restart victim may legitimately re-commit a slot whose
        // WAL tail was lost to amnesia; exempt it from the double-commit
        // audit (recovered-prefix already validates what it re-derives).
        let crashed: BTreeSet<u16> = run
            .meta
            .chaos
            .as_ref()
            .map(|c| c.crashes.iter().map(|(p, _, _)| *p).collect())
            .unwrap_or_default();
        for tr in &correct {
            // window-bound: a replica never opens a slot more than W past
            // its committed floor at the moment of proposing.
            for e in &tr.events {
                if let EventKind::SlotPropose { slot, floor } = e.kind {
                    window_bound += 1;
                    if u64::from(slot) >= u64::from(floor) + pipeline.window {
                        violations.push(Violation {
                            invariant: "window-bound",
                            process: tr.id,
                            detail: format!(
                                "proposed slot {} with committed floor {} under window {}",
                                slot, floor, pipeline.window
                            ),
                        });
                    }
                }
            }
            // slot-reuse-isolation: recycling must never leak state across
            // slots. Observable symptoms audited here: an instance may be
            // recycled only after the slot it served was locally committed
            // (or adopted), and no slot is ever committed twice by one
            // replica — a double commit is exactly what tally bleed
            // through a stale recycled view would produce.
            let mut committed_here: BTreeSet<u32> = BTreeSet::new();
            for e in &tr.events {
                match e.kind {
                    // The guard carries the insert: a first commit records
                    // the slot and falls through to the wildcard arm.
                    EventKind::Commit { slot, .. }
                        if !committed_here.insert(slot) && !crashed.contains(&tr.id) =>
                    {
                        violations.push(Violation {
                            invariant: "slot-reuse-isolation",
                            process: tr.id,
                            detail: format!("slot {} committed twice", slot),
                        });
                    }
                    EventKind::CatchUp { slot, .. } => {
                        committed_here.insert(slot);
                    }
                    EventKind::SlotReuse { slot, freed } => {
                        slot_reuse_isolation += 1;
                        if !committed_here.contains(&freed) {
                            violations.push(Violation {
                                invariant: "slot-reuse-isolation",
                                process: tr.id,
                                detail: format!(
                                    "slot {}'s instance recycled for slot {} before \
                                     slot {} committed locally",
                                    freed, slot, freed
                                ),
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    report.checks = vec![
        ("single-decision", single_decision),
        ("agreement", agreement),
        ("step-scheme", step_scheme),
        ("one-step-p1", one_step_p1),
        ("two-step-p2", two_step_p2),
        ("predicate-witness", predicate_witness),
        ("idb-agreement", idb_agreement),
        ("idb-validity", idb_validity),
        ("log-agreement", log_agreement),
    ];
    if run.meta.chaos.is_some() {
        report.checks.push(("crash-silence", crash_silence));
        report
            .checks
            .push(("termination-after-heal", termination_after_heal));
        report.checks.push(("recovered-prefix", recovered_prefix));
    }
    if run.meta.pipeline.is_some() {
        report.checks.push(("window-bound", window_bound));
        report
            .checks
            .push(("slot-reuse-isolation", slot_reuse_isolation));
    }
    report.violations = violations;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Scheme;

    fn meta(rules: SchemeRules) -> TraceMeta {
        TraceMeta {
            seed: 0,
            n: 7,
            t: 1,
            algo: "test".into(),
            rules,
            faulty: Vec::new(),
            legend: Vec::new(),
            chaos: None,
            pipeline: None,
        }
    }

    fn chaos_meta(crashes: Vec<(u16, u64, Option<u64>)>, eventually_clean: bool) -> ChaosMeta {
        ChaosMeta {
            last_heal: 100,
            eventually_clean,
            crashes,
        }
    }

    fn ev(at: u64, depth: u32, kind: EventKind) -> Event {
        Event { at, depth, kind }
    }

    /// A trace where `id` legally one-step decides on a unanimous J1.
    fn unanimous_one_step(id: u16, code: u64) -> ProcessTrace {
        let mut events = Vec::new();
        for origin in 0..6u16 {
            events.push(ev(
                origin as u64,
                1,
                EventKind::ViewSet {
                    view: ViewTag::J1,
                    origin,
                    code,
                },
            ));
        }
        events.push(ev(
            6,
            1,
            EventKind::Predicate {
                pred: PredTag::P1,
                held: true,
                len: 6,
                top_count: 6,
                second_count: 0,
                top_code: code,
            },
        ));
        events.push(ev(
            6,
            1,
            EventKind::Decide {
                scheme: Scheme::OneStep,
                code,
            },
        ));
        ProcessTrace { id, events }
    }

    #[test]
    fn clean_one_step_run_passes() {
        let run = RunTrace {
            meta: meta(SchemeRules::Frequency),
            processes: (0..7).map(|i| unanimous_one_step(i, 42)).collect(),
        };
        let report = check(&run);
        assert!(report.is_ok(), "{:?}", report.violations);
        assert!(report.total_checks() > 0);
    }

    #[test]
    fn disagreement_is_flagged() {
        let mut processes: Vec<ProcessTrace> = (0..6).map(|i| unanimous_one_step(i, 42)).collect();
        processes.push(unanimous_one_step(6, 43));
        let run = RunTrace {
            meta: meta(SchemeRules::Frequency),
            processes,
        };
        let report = check(&run);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "agreement" && v.process == 6));
    }

    #[test]
    fn one_step_without_margin_is_flagged() {
        // J1 = 4×42, 2×9: margin 2 ≤ 4t — P1 cannot have held.
        let mut events = Vec::new();
        for origin in 0..6u16 {
            let code = if origin < 4 { 42 } else { 9 };
            events.push(ev(
                origin as u64,
                1,
                EventKind::ViewSet {
                    view: ViewTag::J1,
                    origin,
                    code,
                },
            ));
        }
        events.push(ev(
            6,
            1,
            EventKind::Decide {
                scheme: Scheme::OneStep,
                code: 42,
            },
        ));
        let run = RunTrace {
            meta: meta(SchemeRules::Frequency),
            processes: vec![ProcessTrace { id: 0, events }],
        };
        let report = check(&run);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "one-step-p1"));
        // The missing Predicate witness is also flagged.
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "predicate-witness"));
    }

    #[test]
    fn wrong_depth_is_flagged() {
        let mut tr = unanimous_one_step(0, 42);
        // Corrupt the decide depth: 1-step decision at depth 2.
        let last = tr.events.last_mut().unwrap();
        last.depth = 2;
        let run = RunTrace {
            meta: meta(SchemeRules::Frequency),
            processes: vec![tr],
        };
        let report = check(&run);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "step-scheme"));
    }

    #[test]
    fn idb_disagreement_and_validity_are_flagged() {
        let t0 = ProcessTrace {
            id: 0,
            events: vec![
                ev(0, 1, EventKind::IdbInit { origin: 0, code: 5 }),
                ev(1, 2, EventKind::IdbAccept { origin: 0, code: 7 }),
            ],
        };
        let t1 = ProcessTrace {
            id: 1,
            events: vec![ev(1, 2, EventKind::IdbAccept { origin: 0, code: 8 })],
        };
        let run = RunTrace {
            meta: meta(SchemeRules::Opaque),
            processes: vec![t0, t1],
        };
        let report = check(&run);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "idb-agreement"));
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "idb-validity"));
    }

    #[test]
    fn faulty_processes_are_excluded() {
        let mut m = meta(SchemeRules::Frequency);
        m.faulty = vec![6];
        let mut processes: Vec<ProcessTrace> = (0..6).map(|i| unanimous_one_step(i, 42)).collect();
        processes.push(unanimous_one_step(6, 43)); // liar, but faulty
        let run = RunTrace { meta: m, processes };
        assert!(check(&run).is_ok());
    }

    #[test]
    fn chaos_checks_are_absent_without_chaos_meta() {
        let run = RunTrace {
            meta: meta(SchemeRules::Frequency),
            processes: (0..7).map(|i| unanimous_one_step(i, 42)).collect(),
        };
        let report = check(&run);
        assert!(report
            .checks
            .iter()
            .all(|(name, _)| *name != "crash-silence" && *name != "termination-after-heal"));
    }

    #[test]
    fn crash_silence_violation_is_flagged() {
        let mut m = meta(SchemeRules::Frequency);
        // Process 0 is supposed to be down over [2, 10) …
        m.chaos = Some(chaos_meta(vec![(0, 2, Some(10))], true));
        let mut processes: Vec<ProcessTrace> = (0..7).map(|i| unanimous_one_step(i, 42)).collect();
        // … but records a delivery at t = 5, inside the window.
        processes[0]
            .events
            .push(ev(5, 1, EventKind::Deliver { from: 3 }));
        let run = RunTrace { meta: m, processes };
        let report = check(&run);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "crash-silence" && v.process == 0));
    }

    #[test]
    fn undecided_process_fails_termination_when_eventually_clean() {
        let mut m = meta(SchemeRules::Frequency);
        m.chaos = Some(chaos_meta(Vec::new(), true));
        let mut processes: Vec<ProcessTrace> = (0..6).map(|i| unanimous_one_step(i, 42)).collect();
        processes.push(ProcessTrace {
            id: 6,
            events: Vec::new(), // never decides
        });
        let run = RunTrace { meta: m, processes };
        let report = check(&run);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "termination-after-heal" && v.process == 6));
    }

    #[test]
    fn termination_is_not_asserted_for_unclean_schedules() {
        let mut m = meta(SchemeRules::Frequency);
        m.chaos = Some(chaos_meta(Vec::new(), false));
        let mut processes: Vec<ProcessTrace> = (0..6).map(|i| unanimous_one_step(i, 42)).collect();
        processes.push(ProcessTrace {
            id: 6,
            events: Vec::new(),
        });
        let run = RunTrace { meta: m, processes };
        let report = check(&run);
        assert!(report.is_ok(), "{:?}", report.violations);
        // The row still appears (count 0) so artifacts are self-describing.
        assert!(report
            .checks
            .iter()
            .any(|(name, count)| *name == "termination-after-heal" && *count == 0));
    }

    #[test]
    fn catch_up_matching_the_committed_log_passes() {
        let mut m = meta(SchemeRules::Opaque);
        m.chaos = Some(chaos_meta(vec![(1, 2, Some(10))], false));
        let t0 = ProcessTrace {
            id: 0,
            events: vec![ev(0, 1, EventKind::Commit { slot: 3, code: 5 })],
        };
        let t1 = ProcessTrace {
            id: 1,
            events: vec![ev(12, 0, EventKind::CatchUp { slot: 3, code: 5 })],
        };
        let run = RunTrace {
            meta: m,
            processes: vec![t0, t1],
        };
        let report = check(&run);
        assert!(report.is_ok(), "{:?}", report.violations);
        assert!(report
            .checks
            .iter()
            .any(|(name, count)| *name == "recovered-prefix" && *count == 1));
    }

    #[test]
    fn catch_up_diverging_from_the_committed_log_is_flagged() {
        let mut m = meta(SchemeRules::Opaque);
        m.chaos = Some(chaos_meta(vec![(1, 2, Some(10))], false));
        let t0 = ProcessTrace {
            id: 0,
            events: vec![ev(0, 1, EventKind::Commit { slot: 3, code: 5 })],
        };
        let t1 = ProcessTrace {
            id: 1,
            events: vec![
                // Wrong command for slot 3, and a slot nobody committed.
                ev(12, 0, EventKind::CatchUp { slot: 3, code: 9 }),
                ev(12, 0, EventKind::CatchUp { slot: 7, code: 1 }),
            ],
        };
        let run = RunTrace {
            meta: m,
            processes: vec![t0, t1],
        };
        let report = check(&run);
        let flagged: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.invariant == "recovered-prefix")
            .collect();
        assert_eq!(flagged.len(), 2, "{:?}", report.violations);
        assert!(flagged.iter().all(|v| v.process == 1));
    }

    #[test]
    fn recovered_prefix_row_is_absent_without_chaos_meta() {
        let run = RunTrace {
            meta: meta(SchemeRules::Frequency),
            processes: (0..7).map(|i| unanimous_one_step(i, 42)).collect(),
        };
        let report = check(&run);
        assert!(report
            .checks
            .iter()
            .all(|(name, _)| *name != "recovered-prefix"));
    }

    #[test]
    fn log_disagreement_is_flagged() {
        let t0 = ProcessTrace {
            id: 0,
            events: vec![ev(0, 1, EventKind::Commit { slot: 3, code: 5 })],
        };
        let t1 = ProcessTrace {
            id: 1,
            events: vec![ev(0, 1, EventKind::Commit { slot: 3, code: 6 })],
        };
        let run = RunTrace {
            meta: meta(SchemeRules::Opaque),
            processes: vec![t0, t1],
        };
        let report = check(&run);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "log-agreement"));
    }
}
