//! Compact, copyable event records.
//!
//! Events are plain-old-data: every value is reduced to a stable 64-bit
//! [`code`](crate::obs_code) at record time, so an [`Event`](Event) never
//! owns heap memory and pushing one onto the log never allocates.

use core::hash::{Hash, Hasher};

/// Which protocol view a [`EventKind::ViewSet`] mutated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViewTag {
    /// The one-step view `J1` (for non-DEX protocols: the first-round
    /// vote/value view).
    J1,
    /// The two-step view `J2` (IDB-delivered entries).
    J2,
}

impl ViewTag {
    /// Stable label used in the JSON artifact.
    pub fn label(self) -> &'static str {
        match self {
            ViewTag::J1 => "J1",
            ViewTag::J2 => "J2",
        }
    }
}

/// Which legality predicate a [`EventKind::Predicate`] evaluated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PredTag {
    /// `P1(J1)` — the one-step predicate.
    P1,
    /// `P2(J2)` — the two-step predicate.
    P2,
}

impl PredTag {
    /// Stable label used in the JSON artifact.
    pub fn label(self) -> &'static str {
        match self {
            PredTag::P1 => "P1",
            PredTag::P2 => "P2",
        }
    }
}

/// Which mechanism produced a recorded decision.
///
/// Mirrors `dex_core::DecisionPath` without depending on it (the core crate
/// depends on this one, not vice versa).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheme {
    /// One-step expedited decision (`P1` fired).
    OneStep,
    /// Two-step expedited decision (`P2` fired).
    TwoStep,
    /// Adopted from the underlying consensus.
    Fallback,
}

impl Scheme {
    /// Stable label used in the JSON artifact (matches
    /// `DecisionPath::label`).
    pub fn label(self) -> &'static str {
        match self {
            Scheme::OneStep => "1-step",
            Scheme::TwoStep => "2-step",
            Scheme::Fallback => "fallback",
        }
    }
}

/// The payload of one recorded event.
///
/// Process ids are stored as `u16` and values as 64-bit [`obs_code`]s to
/// keep the record small and `Copy`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A message left this process for `to` (stamped by the network
    /// runtime; the event's depth is the causal depth the message carries).
    Send {
        /// Recipient process index.
        to: u16,
    },
    /// A message from `from` was delivered to this process.
    Deliver {
        /// Sender process index.
        from: u16,
    },
    /// A view entry was written (first-value-wins: recorded only when the
    /// entry actually changed from `⊥`).
    ViewSet {
        /// Which view was mutated.
        view: ViewTag,
        /// The entry's origin process.
        origin: u16,
        /// Code of the recorded value.
        code: u64,
    },
    /// A legality predicate was evaluated on a quorate view; carries the
    /// tally snapshot the evaluation saw.
    Predicate {
        /// Which predicate.
        pred: PredTag,
        /// Whether the predicate held.
        held: bool,
        /// `|J|` at evaluation time.
        len: u16,
        /// Occurrences of the most frequent value.
        top_count: u16,
        /// Occurrences of the runner-up value (0 if none).
        second_count: u16,
        /// Code of the most frequent value.
        top_code: u64,
    },
    /// This process decided.
    Decide {
        /// The mechanism that produced the decision.
        scheme: Scheme,
        /// Code of the decided value.
        code: u64,
    },
    /// An IDB `(init, m)` was issued or received for `origin`'s instance.
    IdbInit {
        /// The broadcast instance's origin.
        origin: u16,
        /// Code of the broadcast value.
        code: u64,
    },
    /// An IDB `(echo, m, j)` was received for `origin`'s instance.
    IdbEcho {
        /// The broadcast instance's origin.
        origin: u16,
        /// Code of the witnessed value.
        code: u64,
    },
    /// IDB `Id-Receive` fired: this process accepted `origin`'s broadcast.
    IdbAccept {
        /// The broadcast instance's origin.
        origin: u16,
        /// Code of the accepted value.
        code: u64,
    },
    /// The fallback path was entered: this process proposed to the
    /// underlying consensus.
    Fallback {
        /// Code of the proposed value.
        code: u64,
    },
    /// A replicated-log slot committed (replication layer only).
    Commit {
        /// The log slot.
        slot: u32,
        /// Code of the committed command.
        code: u64,
    },
    /// The fault schedule destroyed a message this process had sent
    /// (probabilistic link drop, or the recipient never recovers).
    LinkDrop {
        /// The recipient that will never see the message.
        to: u16,
    },
    /// The fault schedule duplicated a message this process sent — the
    /// recipient will deliver it twice.
    LinkDup {
        /// The recipient that will see the message twice.
        to: u16,
    },
    /// A network partition opened; messages crossing the cut are held
    /// until it heals (recorded on every process).
    PartitionOpen {
        /// Index of the partition window in the fault schedule.
        id: u16,
    },
    /// A network partition healed; held messages are released (recorded on
    /// every process).
    PartitionHeal {
        /// Index of the partition window in the fault schedule.
        id: u16,
    },
    /// This process crashed: deliveries to it are deferred to its recovery
    /// (or dropped, if it never recovers).
    Crash,
    /// This process recovered; deferred deliveries resume from now.
    Recover,
    /// A recovering/lagging replica adopted `slot` through the catch-up
    /// protocol (quorum-validated replies or WAL replay, replication layer
    /// only).
    CatchUp {
        /// The adopted log slot.
        slot: u32,
        /// Code of the adopted command.
        code: u64,
    },
    /// The resend layer retransmitted an unacknowledged message to `to`.
    Resend {
        /// The recipient of the retransmission.
        to: u16,
    },
    /// A replica opened `slot` for proposing while its committed floor
    /// stood at `floor` (replication layer). In pipelined mode up to `W`
    /// slots may be open past the floor; the checker's `window-bound`
    /// invariant audits exactly that.
    SlotPropose {
        /// The slot being proposed.
        slot: u32,
        /// The contiguous committed prefix length at that moment.
        floor: u32,
    },
    /// A retired slot instance was recycled from the pool to serve `slot`
    /// (pipelined replication only): its tallies, witness maps and gates
    /// were reset in place. `freed` is the committed slot it last served —
    /// the checker's `slot-reuse-isolation` invariant verifies no state
    /// bleeds across the reuse.
    SlotReuse {
        /// The slot the recycled instance now serves.
        slot: u32,
        /// The committed slot whose instance was recycled.
        freed: u32,
    },
}

/// One recorded event: a timestamp, the causal depth of the message being
/// handled when the event fired, and the payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// Virtual time (simnet) or per-process delivery sequence (threadnet).
    pub at: u64,
    /// Causal step depth of the handled message (0 during `on_start`).
    pub depth: u32,
    /// The payload.
    pub kind: EventKind,
}

/// Reduces any hashable value to a stable 64-bit code.
///
/// Codes are compared for *equality only* — the checker never orders them —
/// so a fixed-key hash is sufficient. `DefaultHasher::new()` uses fixed
/// keys, making codes deterministic across runs of the same binary (which
/// is what the byte-identical-artifact guarantee needs).
#[inline]
pub fn obs_code<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_deterministic_and_discriminating() {
        assert_eq!(obs_code(&42u64), obs_code(&42u64));
        assert_ne!(obs_code(&42u64), obs_code(&43u64));
        assert_eq!(obs_code("abc"), obs_code("abc"));
    }

    #[test]
    fn events_are_copy_and_small() {
        let e = Event {
            at: 1,
            depth: 2,
            kind: EventKind::Decide {
                scheme: Scheme::OneStep,
                code: 9,
            },
        };
        let f = e; // Copy
        assert_eq!(e, f);
        // The whole point of code-based records: no heap, bounded size.
        assert!(std::mem::size_of::<Event>() <= 40);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Scheme::OneStep.label(), "1-step");
        assert_eq!(Scheme::TwoStep.label(), "2-step");
        assert_eq!(Scheme::Fallback.label(), "fallback");
        assert_eq!(ViewTag::J1.label(), "J1");
        assert_eq!(PredTag::P2.label(), "P2");
    }
}
