//! Deterministic JSON rendering of a checked run trace.
//!
//! Hand-rolled on purpose: the artifact must be **byte-identical** for the
//! same seed, so every key is emitted in a fixed order, all numbers are
//! integers (no float formatting), value codes are fixed-width hex strings,
//! and nothing depends on hash-map iteration order. One event per line
//! keeps the artifact diffable.

use crate::checker::{CheckReport, RunTrace, SchemeRules};
use crate::event::{Event, EventKind};
use core::fmt::Write as _;

/// Escapes a string for a JSON string literal.
fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a value code as a fixed-width hex JSON string.
fn code(c: u64, out: &mut String) {
    let _ = write!(out, "\"{c:016x}\"");
}

fn event(e: &Event, out: &mut String) {
    let _ = write!(out, "{{\"at\":{},\"depth\":{},\"kind\":", e.at, e.depth);
    match e.kind {
        EventKind::Send { to } => {
            let _ = write!(out, "\"send\",\"to\":{to}");
        }
        EventKind::Deliver { from } => {
            let _ = write!(out, "\"deliver\",\"from\":{from}");
        }
        EventKind::ViewSet {
            view,
            origin,
            code: c,
        } => {
            let _ = write!(
                out,
                "\"view_set\",\"view\":\"{}\",\"origin\":{},\"code\":",
                view.label(),
                origin
            );
            code(c, out);
        }
        EventKind::Predicate {
            pred,
            held,
            len,
            top_count,
            second_count,
            top_code,
        } => {
            let _ = write!(
                out,
                "\"pred\",\"pred\":\"{}\",\"held\":{},\"len\":{},\"top\":{},\"second\":{},\"top_code\":",
                pred.label(),
                held,
                len,
                top_count,
                second_count
            );
            code(top_code, out);
        }
        EventKind::Decide { scheme, code: c } => {
            let _ = write!(
                out,
                "\"decide\",\"scheme\":\"{}\",\"code\":",
                scheme.label()
            );
            code(c, out);
        }
        EventKind::IdbInit { origin, code: c } => {
            let _ = write!(out, "\"idb_init\",\"origin\":{origin},\"code\":");
            code(c, out);
        }
        EventKind::IdbEcho { origin, code: c } => {
            let _ = write!(out, "\"idb_echo\",\"origin\":{origin},\"code\":");
            code(c, out);
        }
        EventKind::IdbAccept { origin, code: c } => {
            let _ = write!(out, "\"idb_accept\",\"origin\":{origin},\"code\":");
            code(c, out);
        }
        EventKind::Fallback { code: c } => {
            out.push_str("\"fallback\",\"code\":");
            code(c, out);
        }
        EventKind::Commit { slot, code: c } => {
            let _ = write!(out, "\"commit\",\"slot\":{slot},\"code\":");
            code(c, out);
        }
        EventKind::LinkDrop { to } => {
            let _ = write!(out, "\"link_drop\",\"to\":{to}");
        }
        EventKind::LinkDup { to } => {
            let _ = write!(out, "\"link_dup\",\"to\":{to}");
        }
        EventKind::PartitionOpen { id } => {
            let _ = write!(out, "\"partition_open\",\"id\":{id}");
        }
        EventKind::PartitionHeal { id } => {
            let _ = write!(out, "\"partition_heal\",\"id\":{id}");
        }
        EventKind::Crash => {
            out.push_str("\"crash\"");
        }
        EventKind::Recover => {
            out.push_str("\"recover\"");
        }
        EventKind::CatchUp { slot, code: c } => {
            let _ = write!(out, "\"catch_up\",\"slot\":{slot},\"code\":");
            code(c, out);
        }
        EventKind::Resend { to } => {
            let _ = write!(out, "\"resend\",\"to\":{to}");
        }
        EventKind::SlotPropose { slot, floor } => {
            let _ = write!(out, "\"slot_propose\",\"slot\":{slot},\"floor\":{floor}");
        }
        EventKind::SlotReuse { slot, freed } => {
            let _ = write!(out, "\"slot_reuse\",\"slot\":{slot},\"freed\":{freed}");
        }
    }
    out.push('}');
}

/// Renders the full artifact: metadata, checker verdict, per-process event
/// logs. Same input ⇒ byte-identical output.
pub fn render(run: &RunTrace, report: &CheckReport) -> String {
    let mut out = String::new();
    out.push_str("{\n\"schema\":\"dex-trace/1\",\n");
    let _ = write!(
        out,
        "\"seed\":{},\n\"n\":{},\n\"t\":{},\n\"algo\":",
        run.meta.seed, run.meta.n, run.meta.t
    );
    escape(&run.meta.algo, &mut out);
    let _ = write!(out, ",\n\"rules\":\"{}\"", run.meta.rules.label());
    if let SchemeRules::Privileged { m_code } = run.meta.rules {
        out.push_str(",\n\"m_code\":");
        code(m_code, &mut out);
    }
    out.push_str(",\n\"faulty\":[");
    for (i, f) in run.meta.faulty.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{f}");
    }
    out.push(']');
    // The chaos block is emitted only for chaos runs: fault-free artifacts
    // keep their pre-chaos byte layout exactly.
    if let Some(chaos) = &run.meta.chaos {
        let _ = write!(
            out,
            ",\n\"chaos\":{{\"last_heal\":{},\"eventually_clean\":{},\"crashes\":[",
            chaos.last_heal, chaos.eventually_clean
        );
        for (i, (p, from, until)) in chaos.crashes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"process\":{p},\"from\":{from},\"until\":");
            match until {
                Some(u) => {
                    let _ = write!(out, "{u}");
                }
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    // Likewise the pipeline block: only pipelined replication runs carry
    // it (window/batch semantics plus the run's wire-byte accounting), so
    // sequential artifacts keep their pre-pipeline byte layout exactly.
    if let Some(pipeline) = &run.meta.pipeline {
        let _ = write!(
            out,
            ",\n\"pipeline\":{{\"window\":{},\"batch\":{},\"bytes_on_wire\":{},\
             \"sent_init\":{},\"sent_echo\":{},\"sent_batch\":{},\"sent_other\":{},\
             \"echoes_batched\":{}}}",
            pipeline.window,
            pipeline.batch,
            pipeline.bytes_on_wire,
            pipeline.sent_by_class[0],
            pipeline.sent_by_class[1],
            pipeline.sent_by_class[2],
            pipeline.sent_by_class[3],
            pipeline.echoes_batched
        );
    }
    out.push_str(",\n\"legend\":[");
    for (i, (c, label)) in run.meta.legend.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"code\":");
        code(*c, &mut out);
        out.push_str(",\"value\":");
        escape(label, &mut out);
        out.push('}');
    }
    out.push_str("],\n\"check\":{\"ok\":");
    let _ = write!(out, "{}", report.is_ok());
    out.push_str(",\"checks\":[");
    for (i, (invariant, count)) in report.checks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"invariant\":\"{invariant}\",\"count\":{count}}}");
    }
    out.push_str("],\"violations\":[");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"invariant\":\"{}\",\"process\":{},\"detail\":",
            v.invariant, v.process
        );
        escape(&v.detail, &mut out);
        out.push('}');
    }
    out.push_str("]},\n\"processes\":[");
    for (i, p) in run.processes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n{{\"id\":{},\"events\":[", p.id);
        for (j, e) in p.events.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('\n');
            event(e, &mut out);
        }
        out.push_str("\n]}");
    }
    out.push_str("\n]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, ProcessTrace, TraceMeta};
    use crate::event::{PredTag, Scheme, ViewTag};

    fn sample() -> RunTrace {
        RunTrace {
            meta: TraceMeta {
                seed: 42,
                n: 4,
                t: 0,
                algo: "dex-freq".into(),
                rules: SchemeRules::Frequency,
                faulty: vec![3],
                legend: vec![(5, "5".into())],
                chaos: None,
                pipeline: None,
            },
            processes: vec![ProcessTrace {
                id: 0,
                events: vec![
                    Event {
                        at: 1,
                        depth: 1,
                        kind: EventKind::Deliver { from: 2 },
                    },
                    Event {
                        at: 1,
                        depth: 1,
                        kind: EventKind::ViewSet {
                            view: ViewTag::J1,
                            origin: 2,
                            code: 5,
                        },
                    },
                    Event {
                        at: 1,
                        depth: 1,
                        kind: EventKind::Predicate {
                            pred: PredTag::P1,
                            held: true,
                            len: 4,
                            top_count: 4,
                            second_count: 0,
                            top_code: 5,
                        },
                    },
                    Event {
                        at: 1,
                        depth: 1,
                        kind: EventKind::Decide {
                            scheme: Scheme::OneStep,
                            code: 5,
                        },
                    },
                ],
            }],
        }
    }

    #[test]
    fn render_is_deterministic() {
        let run = sample();
        let report = check(&run);
        assert_eq!(render(&run, &report), render(&run, &report));
    }

    #[test]
    fn render_contains_fixed_keys_and_hex_codes() {
        let run = sample();
        let report = check(&run);
        let s = render(&run, &report);
        assert!(s.starts_with("{\n\"schema\":\"dex-trace/1\""));
        assert!(s.contains("\"rules\":\"frequency\""));
        assert!(s.contains("\"code\":\"0000000000000005\""));
        assert!(s.contains("\"scheme\":\"1-step\""));
        assert!(s.contains("\"faulty\":[3]"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn chaos_meta_and_events_render_only_for_chaos_runs() {
        let clean = {
            let run = sample();
            let report = check(&run);
            render(&run, &report)
        };
        assert!(!clean.contains("\"chaos\""));

        let mut run = sample();
        run.meta.chaos = Some(crate::checker::ChaosMeta {
            last_heal: 80,
            eventually_clean: true,
            crashes: vec![(1, 5, Some(60)), (2, 7, None)],
        });
        run.processes[0].events.push(Event {
            at: 2,
            depth: 1,
            kind: EventKind::LinkDrop { to: 3 },
        });
        run.processes[0].events.push(Event {
            at: 3,
            depth: 0,
            kind: EventKind::PartitionHeal { id: 0 },
        });
        let report = check(&run);
        let s = render(&run, &report);
        assert!(s.contains(
            "\"chaos\":{\"last_heal\":80,\"eventually_clean\":true,\
             \"crashes\":[{\"process\":1,\"from\":5,\"until\":60},\
             {\"process\":2,\"from\":7,\"until\":null}]}"
        ));
        assert!(s.contains("\"kind\":\"link_drop\",\"to\":3"));
        assert!(s.contains("\"kind\":\"partition_heal\",\"id\":0"));
        assert!(s.contains("\"invariant\":\"crash-silence\""));
    }

    #[test]
    fn escape_handles_specials() {
        let mut out = String::new();
        escape("a\"b\\c\nd", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }
}
