//! Per-run decide summaries — extraction without retention.
//!
//! A campaign runs thousands of seeds; keeping every run's full event
//! trace alive just to count decisions would dwarf the runs themselves.
//! [`DecideSummary`] is the streaming alternative: it folds an event
//! stream down to the handful of numbers the campaign aggregator needs —
//! per-scheme decision counts and each decider's first-decision depth and
//! latency — in O(1) state per process, so the trace can be dropped (or
//! never materialized) the moment the fold finishes.

use crate::checker::RunTrace;
use crate::event::{Event, EventKind, Scheme};

/// One correct process's first decision, as seen in its event stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecideRecord {
    /// The process index.
    pub process: u16,
    /// The mechanism that produced the decision.
    pub scheme: Scheme,
    /// Causal step depth at the decision.
    pub depth: u32,
    /// Virtual-time latency of the decision.
    pub latency: u64,
}

/// Streaming fold of decide events: scheme counts plus one
/// [`DecideRecord`] per deciding process (first decision wins, matching
/// the protocols' decide-once discipline).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DecideSummary {
    /// One-step (P1) decisions.
    pub one_step: u32,
    /// Two-step (P2) decisions.
    pub two_step: u32,
    /// Decisions adopted from the underlying consensus.
    pub fallback: u32,
    /// First decision of each deciding process, in process-id order.
    pub decisions: Vec<DecideRecord>,
}

impl DecideSummary {
    /// An empty summary.
    pub fn new() -> Self {
        DecideSummary::default()
    }

    /// Folds one process's event stream in. Only the first `Decide` event
    /// counts; everything else is skipped in O(1) per event.
    pub fn fold_process<'a>(&mut self, process: u16, events: impl IntoIterator<Item = &'a Event>) {
        for ev in events {
            if let EventKind::Decide { scheme, .. } = ev.kind {
                match scheme {
                    Scheme::OneStep => self.one_step += 1,
                    Scheme::TwoStep => self.two_step += 1,
                    Scheme::Fallback => self.fallback += 1,
                }
                self.decisions.push(DecideRecord {
                    process,
                    scheme,
                    depth: ev.depth,
                    latency: ev.at,
                });
                return;
            }
        }
    }

    /// Summarizes a finished trace, excluding the processes its metadata
    /// marks faulty (their streams are adversarial noise).
    pub fn from_trace(trace: &RunTrace) -> Self {
        let mut summary = DecideSummary::new();
        for p in &trace.processes {
            if trace.meta.faulty.contains(&p.id) {
                continue;
            }
            summary.fold_process(p.id, &p.events);
        }
        summary
    }

    /// Total decisions folded in.
    pub fn decided(&self) -> u32 {
        self.one_step + self.two_step + self.fallback
    }

    /// Decisions on an expedited path (one- or two-step) — the numerator
    /// of the campaign's fast-decision rate.
    pub fn fast(&self) -> u32 {
        self.one_step + self.two_step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{ProcessTrace, SchemeRules, TraceMeta};

    fn decide(at: u64, depth: u32, scheme: Scheme) -> Event {
        Event {
            at,
            depth,
            kind: EventKind::Decide { scheme, code: 1 },
        }
    }

    fn send(at: u64) -> Event {
        Event {
            at,
            depth: 0,
            kind: EventKind::Send { to: 0 },
        }
    }

    #[test]
    fn fold_takes_the_first_decision_only() {
        let mut s = DecideSummary::new();
        s.fold_process(
            3,
            &[
                send(1),
                decide(5, 1, Scheme::OneStep),
                decide(9, 2, Scheme::Fallback),
            ],
        );
        assert_eq!(s.one_step, 1);
        assert_eq!(s.fallback, 0);
        assert_eq!(
            s.decisions,
            vec![DecideRecord {
                process: 3,
                scheme: Scheme::OneStep,
                depth: 1,
                latency: 5
            }]
        );
    }

    #[test]
    fn undecided_streams_contribute_nothing() {
        let mut s = DecideSummary::new();
        s.fold_process(0, &[send(1), send(2)]);
        assert_eq!(s.decided(), 0);
        assert!(s.decisions.is_empty());
    }

    #[test]
    fn from_trace_excludes_faulty_processes() {
        let meta = TraceMeta {
            seed: 0,
            n: 3,
            t: 1,
            algo: "dex-freq".into(),
            rules: SchemeRules::Frequency,
            faulty: vec![2],
            legend: Vec::new(),
            chaos: None,
            pipeline: None,
        };
        let trace = RunTrace {
            meta,
            processes: vec![
                ProcessTrace {
                    id: 0,
                    events: vec![decide(4, 1, Scheme::OneStep)],
                },
                ProcessTrace {
                    id: 1,
                    events: vec![decide(7, 2, Scheme::TwoStep)],
                },
                ProcessTrace {
                    id: 2,
                    events: vec![decide(2, 1, Scheme::OneStep)], // faulty: ignored
                },
            ],
        };
        let s = DecideSummary::from_trace(&trace);
        assert_eq!((s.one_step, s.two_step, s.fallback), (1, 1, 0));
        assert_eq!(s.fast(), 2);
        assert_eq!(s.decided(), 2);
        assert_eq!(s.decisions.len(), 2);
        assert_eq!(s.decisions[0].process, 0);
        assert_eq!(s.decisions[1].latency, 7);
    }
}
