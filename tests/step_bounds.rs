//! Lemmas 4 & 5 as executable bounds: for any input and any fault count
//! `f ≤ t`, membership in `C¹_f` forces one-step decisions and membership
//! in `C²_f` forces ≤ two-step decisions — for both legal pairs, under the
//! worst-case lying adversary.

use dex::adversary::{ByzantineStrategy, FaultPlan};
use dex::conditions::{FrequencyPair, LegalityPair, PrivilegedPair};
use dex::harness::runner::{run_instance, Algo, RunInstance, UnderlyingKind};
use dex::simnet::DelayModel;
use dex::types::{InputVector, ProcessId, SystemConfig};

/// Runs `algo` with the last `f` processes lying with value `lie`, and
/// returns the worst (max) decision step among correct processes.
fn worst_steps(
    cfg: SystemConfig,
    algo: Algo,
    input: &InputVector<u64>,
    f: usize,
    lie: u64,
    seed: u64,
) -> u32 {
    let result = run_instance(&RunInstance {
        faults: dex::simnet::FaultSchedule::none(),
        config: cfg,
        algo,
        underlying: UnderlyingKind::Oracle,
        strategy: ByzantineStrategy::ConsistentLie { value: lie },
        fault_plan: FaultPlan::from_ids(cfg, (cfg.n() - f..cfg.n()).map(ProcessId::new)),
        input: input.clone(),
        // Lockstep delivery = the paper's well-behaved-run regime, where
        // the exact step counts of Lemmas 4/5 are the measured depths.
        delay: DelayModel::Constant(1),
        seed,
        max_events: 10_000_000,
        aggregate: false,
    });
    assert!(result.quiescent && result.agreement_ok() && result.all_decided());
    result.max_steps().expect("correct processes decided")
}

#[test]
fn lemma4_lemma5_frequency_pair() {
    let cfg = SystemConfig::new(13, 2).unwrap();
    let pair = FrequencyPair::new(cfg).unwrap();
    for mc in 0..=4usize {
        // Deterministic split: mc zeros then ones; the faulty tail lies 0.
        let mut entries = vec![1u64; 13];
        for e in entries.iter_mut().take(mc) {
            *e = 0;
        }
        let input = InputVector::new(entries);
        for f in 0..=2usize {
            for seed in 0..3u64 {
                let steps = worst_steps(cfg, Algo::DexFreq, &input, f, 0, 100 + seed);
                if pair.in_c1(&input, f) {
                    assert_eq!(
                        steps, 1,
                        "Lemma 4: {input} in C1_{f} must decide in one step"
                    );
                } else if pair.in_c2(&input, f) {
                    assert!(
                        steps <= 2,
                        "Lemma 5: {input} in C2_{f} must decide in <= 2 steps, took {steps}"
                    );
                } else {
                    assert!(
                        steps <= 4,
                        "outside both conditions the oracle fallback caps at 4, took {steps}"
                    );
                }
            }
        }
    }
}

#[test]
fn lemma4_lemma5_privileged_pair() {
    let cfg = SystemConfig::new(11, 2).unwrap();
    let m = 1u64;
    let pair = PrivilegedPair::new(cfg, m).unwrap();
    for commits in [11usize, 9, 8, 7, 6, 4] {
        let mut entries = vec![0u64; 11];
        for e in entries.iter_mut().take(commits) {
            *e = m;
        }
        let input = InputVector::new(entries);
        for f in 0..=2usize {
            for seed in 0..3u64 {
                // The adversary lies with the non-privileged value.
                let steps = worst_steps(cfg, Algo::DexPrv { m }, &input, f, 0, 200 + seed);
                if pair.in_c1(&input, f) {
                    assert_eq!(
                        steps, 1,
                        "Lemma 4 (prv): #m = {commits}, f = {f} must be one-step"
                    );
                } else if pair.in_c2(&input, f) {
                    assert!(
                        steps <= 2,
                        "Lemma 5 (prv): #m = {commits}, f = {f} must be <= 2 steps, took {steps}"
                    );
                }
            }
        }
    }
}

#[test]
fn condition_membership_is_the_exact_boundary() {
    // One tick below the C¹ boundary the guarantee must *not* hold under
    // the worst-case liar: margin = 4t + 2f exactly ⇒ no one-step.
    let cfg = SystemConfig::new(13, 2).unwrap();
    let pair = FrequencyPair::new(cfg).unwrap();
    // mc = 2: margin 9 = 4t + 2f + 1 with f = 0 ⇒ in C¹_0; with f = 1,
    // 9 ≤ 8 + 2 ⇒ outside C¹_1 (but inside C²_1: 9 > 4 + 2).
    let mut entries = vec![1u64; 13];
    entries[0] = 0;
    entries[1] = 0;
    let input = InputVector::new(entries);
    assert!(pair.in_c1(&input, 0));
    assert!(!pair.in_c1(&input, 1));
    assert!(pair.in_c2(&input, 1));

    assert_eq!(worst_steps(cfg, Algo::DexFreq, &input, 0, 0, 7), 1);
    let steps_f1 = worst_steps(cfg, Algo::DexFreq, &input, 1, 0, 7);
    assert!(
        (1..=2).contains(&steps_f1),
        "outside C1_1 one-step is not guaranteed but C2_1 caps at 2, got {steps_f1}"
    );
}
