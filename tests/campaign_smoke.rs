//! Campaign-engine acceptance: the smoke campaign's artifact is
//! byte-stable across worker counts and digest orderings, its
//! fast-decision rates are monotone non-increasing in `f` with strict
//! adaptivity below the fault bound, and its per-run digests agree with
//! both the compiled single-run `RunSpec`s and the structured trace
//! summaries — three independent execution paths, one answer.

use dex::harness::campaign::{aggregate, run_campaign, run_digests, CampaignSpec};
use dex::obs::DecideSummary;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

#[test]
fn artifact_is_byte_identical_across_worker_counts() {
    let spec = CampaignSpec::smoke();
    let one = run_campaign(&spec, 1).expect("valid campaign");
    let eight = run_campaign(&spec, 8).expect("valid campaign");
    assert_eq!(one.render_json(), eight.render_json());
    assert_eq!(one.summary_markdown(), eight.summary_markdown());
}

#[test]
fn aggregation_is_independent_of_digest_order() {
    let spec = CampaignSpec::smoke();
    let digests = run_digests(&spec, 4).expect("valid campaign");
    let reference = aggregate(&spec, digests.clone()).render_json();
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..3 {
        let mut shuffled = digests.clone();
        shuffled.shuffle(&mut rng);
        assert_eq!(
            aggregate(&spec, shuffled).render_json(),
            reference,
            "shuffled digest order changed the artifact"
        );
    }
}

#[test]
fn smoke_rates_are_monotone_and_strictly_adaptive() {
    let report = run_campaign(&CampaignSpec::smoke(), 4).expect("valid campaign");
    assert_eq!(report.agreement_violations(), 0);
    let audit = report.check_f_monotonicity();
    assert!(
        audit.monotone(),
        "fast rate rose with f: {:?}",
        audit.violations
    );
    // The acceptance bar: strictly higher fast rate at some f < t than at
    // f = t, on at least one canonical chaos schedule (and in fact on the
    // clean network too).
    assert!(audit.strict_canonical >= 1, "no adaptivity under chaos");
    assert!(
        audit.strict > audit.strict_canonical,
        "no adaptivity on the clean network"
    );
}

#[test]
fn digests_agree_with_compiled_runspecs_and_trace_summaries() {
    let spec = CampaignSpec::smoke();
    let cells = spec.cells();
    let digests = run_digests(&spec, 4).expect("valid campaign");
    // Three probes across pairs, phases and chaos schedules.
    for (cell_idx, run) in [(0usize, 0usize), (7, 1), (32, 3)] {
        let digest = digests
            .iter()
            .find(|d| d.cell == cell_idx && d.run == run)
            .expect("every task produced a digest");
        let replay = spec.runspec_for(&cells[cell_idx], run);
        // Path 2: the compiled single-run RunSpec.
        let stats = replay.run().expect("replay runs");
        assert_eq!(u64::from(digest.one_step), stats.paths.count(&"1-step"));
        assert_eq!(u64::from(digest.two_step), stats.paths.count(&"2-step"));
        assert_eq!(u64::from(digest.fallback), stats.paths.count(&"fallback"));
        assert_eq!(digest.undecided as usize, stats.undecided);
        // Path 3: the traced replay, folded by the obs-layer summary.
        let traced = replay.traced(0).expect("replay traces");
        let summary = DecideSummary::from_trace(&traced.trace);
        assert_eq!(digest.one_step, summary.one_step);
        assert_eq!(digest.two_step, summary.two_step);
        assert_eq!(digest.fallback, summary.fallback);
        assert_eq!(
            digest.one_step + digest.two_step,
            summary.fast(),
            "cell {cell_idx} run {run}: fast-decision numerators disagree"
        );
    }
}

#[test]
fn replay_specs_round_trip_through_cli_flags() {
    // Every campaign grid point compiles to a RunSpec whose CLI rendering
    // parses back to the same spec — any data point is replayable with
    // dex-sim flags.
    let spec = CampaignSpec::smoke();
    let cells = spec.cells();
    for cell_idx in [0, 13, 49] {
        let replay = spec.runspec_for(&cells[cell_idx], 1);
        let args = replay.to_args();
        let parsed = dex::harness::spec::RunSpec::from_args(&args).expect("replay flags parse");
        assert_eq!(parsed, replay);
    }
}
