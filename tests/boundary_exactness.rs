//! Boundary exactness: the paper's thresholds are tight. These tests place
//! the system *exactly at* each boundary and check that guarantees hold
//! there and stop holding one tick below — surgically, with deterministic
//! lockstep schedules.

use dex::adversary::{ByzantineStrategy, FaultPlan};
use dex::conditions::{FrequencyPair, PairError, PrivilegedPair};
use dex::harness::runner::{run_instance, Algo, RunInstance, UnderlyingKind};
use dex::simnet::DelayModel;
use dex::types::{InputVector, ProcessId, SystemConfig};

fn lockstep_spec(
    cfg: SystemConfig,
    algo: Algo,
    input: InputVector<u64>,
    strategy: ByzantineStrategy<u64>,
    f: usize,
    seed: u64,
) -> RunInstance {
    RunInstance {
        faults: dex::simnet::FaultSchedule::none(),
        config: cfg,
        algo,
        underlying: UnderlyingKind::Oracle,
        strategy,
        fault_plan: FaultPlan::last_k(cfg, f),
        input,
        delay: DelayModel::Constant(1),
        seed,
        max_events: 10_000_000,
        aggregate: false,
    }
}

#[test]
fn pair_constructors_enforce_exact_resilience() {
    // n = 6t is rejected, n = 6t + 1 accepted (frequency pair).
    for t in 1..=4 {
        let low = SystemConfig::new(6 * t, t).unwrap();
        assert!(matches!(
            FrequencyPair::new(low),
            Err(PairError::InsufficientResilience { .. })
        ));
        let ok = SystemConfig::new(6 * t + 1, t).unwrap();
        assert!(FrequencyPair::new(ok).is_ok());
    }
    // n = 5t rejected, n = 5t + 1 accepted (privileged pair). n = 5t may
    // violate even the SystemConfig invariant for small t, so start at 2.
    for t in 2..=4 {
        let low = SystemConfig::new(5 * t, t).unwrap();
        assert!(PrivilegedPair::new(low, 1u64).is_err());
        let ok = SystemConfig::new(5 * t + 1, t).unwrap();
        assert!(PrivilegedPair::new(ok, 1u64).is_ok());
    }
}

#[test]
fn p1_fires_exactly_above_4t() {
    // n = 13, t = 2: margin 9 > 8 fires, margin 8 does not — measured
    // through the actual algorithm, not just the predicate.
    let cfg = SystemConfig::new(13, 2).unwrap();
    // margin 9: mc = 2.
    let mut in_c1 = vec![1u64; 13];
    in_c1[0] = 0;
    in_c1[1] = 0;
    let r = run_instance(&lockstep_spec(
        cfg,
        Algo::DexFreq,
        InputVector::new(in_c1),
        ByzantineStrategy::Silent,
        0,
        1,
    ));
    assert!(r.decided().all(|p| p.steps == 1), "margin 9 > 4t = 8");

    // margin 7: mc = 3 — strictly between 2t and 4t: all two-step.
    let mut in_c2 = vec![1u64; 13];
    for e in in_c2.iter_mut().take(3) {
        *e = 0;
    }
    let r = run_instance(&lockstep_spec(
        cfg,
        Algo::DexFreq,
        InputVector::new(in_c2),
        ByzantineStrategy::Silent,
        0,
        1,
    ));
    assert!(
        r.decided().all(|p| p.steps == 2),
        "margin 7 ∈ (4, 8] is exactly the two-step band"
    );
}

#[test]
fn p2_boundary_at_2t() {
    let cfg = SystemConfig::new(13, 2).unwrap();
    // margin 5 > 4 = 2t: two-step. margin 3 ≤ 4: fallback.
    for (mc, expected_steps) in [(4usize, 2u32), (5, 4)] {
        let mut entries = vec![1u64; 13];
        for e in entries.iter_mut().take(mc) {
            *e = 0;
        }
        let r = run_instance(&lockstep_spec(
            cfg,
            Algo::DexFreq,
            InputVector::new(entries),
            ByzantineStrategy::Silent,
            0,
            2,
        ));
        assert!(
            r.decided().all(|p| p.steps == expected_steps),
            "mc = {mc}: expected {expected_steps} steps, got {:?}",
            r.decided().map(|p| p.steps).collect::<Vec<_>>()
        );
    }
}

#[test]
fn prv_p1_boundary_at_3t() {
    let cfg = SystemConfig::new(11, 2).unwrap();
    // #m = 7 > 6 = 3t: one-step. #m = 6: not guaranteed — with lockstep
    // full views it means P1 never fires (view #m = 6 exactly), so the
    // two-step or fallback path handles it (#m = 6 > 4 = 2t ⇒ two-step).
    for (commits, expected_steps) in [(7usize, 1u32), (6, 2)] {
        let mut entries = vec![0u64; 11];
        for e in entries.iter_mut().take(commits) {
            *e = 1;
        }
        let r = run_instance(&lockstep_spec(
            cfg,
            Algo::DexPrv { m: 1 },
            InputVector::new(entries),
            ByzantineStrategy::Silent,
            0,
            3,
        ));
        assert!(
            r.decided()
                .all(|p| p.steps == expected_steps && p.value == 1),
            "#m = {commits}: {:?}",
            r.decided().map(|p| (p.steps, p.value)).collect::<Vec<_>>()
        );
    }
}

#[test]
fn bosco_strong_boundary_at_7t() {
    // Unanimous correct proposals, t lying faults. At n = 7t + 1 the
    // supermajority rule is guaranteed; at n = 6t + 1 the liar can break it
    // in lockstep runs (all n views include its t lies: n − t matching
    // votes vs threshold (n + 3t)/2 + 1; for n = 13, t = 2: 11 vs 10 — it
    // still fires! The *weak* bound is about guarantee under adversarial
    // scheduling, so check the genuinely losing case: the liar's votes plus
    // scheduling). We pin the exact counting instead:
    let t = 2;
    let strong = SystemConfig::new(7 * t + 1, t).unwrap(); // 15
    let r = run_instance(&lockstep_spec(
        strong,
        Algo::Bosco,
        InputVector::unanimous(15, 1),
        ByzantineStrategy::ConsistentLie { value: 0 },
        t,
        4,
    ));
    // Threshold: > (15 + 6)/2 = 10.5 ⇒ ≥ 11 matching among the first 13.
    // Worst case includes both lies: 11 true votes ≥ 11 ⇒ always decides.
    assert!(
        r.decided().all(|p| p.steps == 1),
        "strongly one-step at n = 7t + 1: {:?}",
        r.decided().map(|p| p.steps).collect::<Vec<_>>()
    );

    let weak = SystemConfig::new(6 * t + 1, t).unwrap(); // 13
    let mut one_step_everywhere = true;
    for seed in 0..30 {
        let r = run_instance(&RunInstance {
            faults: dex::simnet::FaultSchedule::none(),
            delay: DelayModel::Uniform { min: 1, max: 20 },
            seed,
            ..lockstep_spec(
                weak,
                Algo::Bosco,
                InputVector::unanimous(13, 1),
                ByzantineStrategy::ConsistentLie { value: 0 },
                t,
                0,
            )
        });
        if !r.decided().all(|p| p.steps == 1) {
            one_step_everywhere = false;
        }
        assert!(r.agreement_ok() && r.all_decided());
    }
    assert!(
        !one_step_everywhere,
        "below 7t + 1 Bosco must lose one-step decisions on some schedule"
    );
}

#[test]
fn idb_quorums_are_exact() {
    use dex::broadcast::{Action, IdbMessage, IdenticalBroadcast};
    // n = 9, t = 2: amplification at exactly n − 2t = 5, acceptance at
    // exactly n − t = 7 — one echo earlier, nothing happens.
    let cfg = SystemConfig::new(9, 2).unwrap();
    let mut idb: IdenticalBroadcast<ProcessId, u64> = IdenticalBroadcast::new(cfg);
    let key = ProcessId::new(0);
    for i in 1..5 {
        assert!(idb
            .on_message(ProcessId::new(i), &IdbMessage::Echo { key, value: 7 })
            .is_empty());
    }
    let at5 = idb.on_message(ProcessId::new(5), &IdbMessage::Echo { key, value: 7 });
    assert!(matches!(at5.as_slice(), [Action::Broadcast(_)]));
    assert!(idb
        .on_message(ProcessId::new(6), &IdbMessage::Echo { key, value: 7 })
        .is_empty());
    // Our own amplified echo counts as the 7th witness when it loops back.
    let at7 = idb.on_message(ProcessId::new(7), &IdbMessage::Echo { key, value: 7 });
    assert!(at7.contains(&Action::Deliver { key, value: 7 }));
}
