//! The chaos acceptance matrix: every canonical chaos schedule, composed
//! with a Byzantine adversary at full strength (`f = t`), across many
//! seeds — and every run must come back from the structured invariant
//! checker with zero violations.
//!
//! This is the headline guarantee of the fault-schedule layer: network
//! chaos (drops, duplication, partitions, crash windows) *composes* with
//! protocol-level Byzantine behaviour without ever endangering safety, and
//! because each schedule in [`ChaosSpec::MATRIX`] is eventually clean
//! (partitions heal, crashes recover, drops stay confined to links that
//! touch a Byzantine process), the checker's GST-style
//! `termination-after-heal` invariant is armed and must hold too.

use dex::harness::spec::{AdversarySpec, ChaosSpec, RunSpec, WorkloadSpec};

const SEEDS: u64 = 8;

fn chaos_spec(chaos: ChaosSpec, seed: u64) -> RunSpec {
    RunSpec {
        f: 1, // f = t: the adversary at full strength under every schedule
        workload: WorkloadSpec::Bernoulli { p: 0.8 },
        adversary: AdversarySpec::Equivocate,
        chaos,
        runs: 1,
        seed,
        ..RunSpec::default()
    }
}

#[test]
fn chaos_matrix_passes_the_invariant_checker_on_every_seed() {
    for chaos in ChaosSpec::MATRIX {
        for seed in 0..SEEDS {
            let spec = chaos_spec(chaos.clone(), seed);
            let traced = spec.traced(0).expect("valid spec");
            let report = dex::obs::check(&traced.trace);
            assert!(
                report.is_ok(),
                "chaos `{}` seed {seed}: {:?}",
                chaos.label(),
                report.violations
            );

            let meta = traced
                .trace
                .meta
                .chaos
                .as_ref()
                .expect("chaos meta present");
            assert!(
                meta.eventually_clean,
                "every matrix schedule is eventually clean (chaos `{}`)",
                chaos.label()
            );
            assert!(
                report
                    .checks
                    .iter()
                    .any(|&(name, count)| name == "termination-after-heal" && count > 0),
                "the GST-style liveness invariant must be armed (chaos `{}`)",
                chaos.label()
            );
        }
    }
}

#[test]
fn chaos_free_specs_carry_no_chaos_meta() {
    let spec = chaos_spec(ChaosSpec::None, 31);
    let traced = spec.traced(0).expect("valid spec");
    assert!(
        traced.trace.meta.chaos.is_none(),
        "chaos-free runs keep the pre-chaos artifact shape"
    );
    assert!(dex::obs::check(&traced.trace).is_ok());
}

#[test]
fn chaos_trace_artifact_is_byte_stable() {
    // The rendered artifact — events, checker rows, and the chaos block —
    // must be identical across re-executions of the same spec.
    let spec = chaos_spec(ChaosSpec::PartitionHeal { open: 5, heal: 120 }, 31);
    let render = |spec: &RunSpec| {
        let traced = spec.traced(0).expect("valid spec");
        let report = dex::obs::check(&traced.trace);
        dex::obs::json::render(&traced.trace, &report)
    };
    let first = render(&spec);
    let second = render(&spec);
    assert_eq!(first, second, "chaos artifacts must replay byte-for-byte");
    assert!(
        first.contains("\"chaos\":{\"last_heal\":120,\"eventually_clean\":true,"),
        "the artifact must carry the chaos block"
    );
    assert_eq!(
        spec.trace_artifact(),
        "results/trace_chaos_partition_31.json"
    );
}
