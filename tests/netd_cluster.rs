//! End-to-end netd cluster test: the acceptance scenario for the
//! process-level runtime, run against the real `dex-netd` binary.
//!
//! A 5-process localhost cluster must (a) decide a canonical fault-free
//! MATRIX cell with agreement across all processes, and (b) survive a
//! literal `kill -9` + respawn of one replica, converging through
//! `FileWal` replay and `t + 1` catch-up. The harness itself asserts
//! agreement, convergence and the restart count; this test asserts the
//! harness succeeds and emits the artifacts.

use std::process::Command;

#[test]
fn five_process_cluster_decides_and_survives_kill9() {
    let dir = std::env::temp_dir().join(format!("dex-netd-itest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("artifact dir");
    let output = Command::new(env!("CARGO_BIN_EXE_dex-netd"))
        .current_dir(&dir)
        .args([
            "--cluster",
            "--n",
            "5",
            "--t",
            "0",
            "--workload",
            "bernoulli:0.8",
            "--runs",
            "1",
            "--seed",
            "31",
            "--slots",
            "6",
            "--timeout-secs",
            "120",
        ])
        .output()
        .expect("spawn dex-netd --cluster");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "cluster harness failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("decided"),
        "consensus cell reported no decision:\n{stdout}"
    );
    assert!(
        stdout.contains("converged at prefix 6") && stdout.contains("after 1 restart"),
        "kill -9 phase did not converge as expected:\n{stdout}"
    );
    let bench = std::fs::read_to_string(dir.join("BENCH_netd.json")).expect("BENCH_netd.json");
    assert!(bench.contains("\"cell\":\"consensus\""), "bench: {bench}");
    assert!(
        bench.contains("\"cell\":\"kill9\"") && bench.contains("\"converged\":true"),
        "bench: {bench}"
    );
    assert!(
        dir.join("results/netd_31.json").exists(),
        "results artifact missing"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
