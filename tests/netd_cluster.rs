//! End-to-end netd cluster tests: the acceptance scenarios for the
//! process-level runtime, run against the real `dex-netd` binary.
//!
//! A localhost cluster must (a) decide a canonical fault-free MATRIX
//! cell with agreement across all processes, (b) survive a literal
//! `kill -9` + respawn of one replica, converging through `FileWal`
//! replay and `t + 1` catch-up, (c) decide every `ChaosSpec::MATRIX`
//! schedule injected onto its real TCP links with a seed-reproducible
//! per-link fault trace, and (d) survive the divergent-state kill -9:
//! per-process differing pending commands, survivor progress proven
//! while the victim is down, byte-identical committed prefixes after the
//! respawn. The harness itself asserts agreement, convergence and the
//! restart count; these tests assert the harness succeeds and emits the
//! artifacts.

use std::path::Path;
use std::process::Command;

/// Runs `dex-netd` in `dir`, asserting the exit status.
fn netd(dir: &Path, args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_dex-netd"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn dex-netd");
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "dex-netd {args:?} failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    stdout
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dex-netd-itest-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("artifact dir");
    dir
}

#[test]
fn five_process_cluster_decides_and_survives_kill9() {
    let dir = std::env::temp_dir().join(format!("dex-netd-itest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("artifact dir");
    let output = Command::new(env!("CARGO_BIN_EXE_dex-netd"))
        .current_dir(&dir)
        .args([
            "--cluster",
            "--n",
            "5",
            "--t",
            "0",
            "--workload",
            "bernoulli:0.8",
            "--runs",
            "1",
            "--seed",
            "31",
            "--slots",
            "6",
            "--timeout-secs",
            "120",
        ])
        .output()
        .expect("spawn dex-netd --cluster");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "cluster harness failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("decided"),
        "consensus cell reported no decision:\n{stdout}"
    );
    assert!(
        stdout.contains("converged at prefix 6") && stdout.contains("after 1 restart"),
        "kill -9 phase did not converge as expected:\n{stdout}"
    );
    let bench = std::fs::read_to_string(dir.join("BENCH_netd.json")).expect("BENCH_netd.json");
    assert!(bench.contains("\"cell\":\"consensus\""), "bench: {bench}");
    assert!(
        bench.contains("\"cell\":\"kill9\"") && bench.contains("\"converged\":true"),
        "bench: {bench}"
    );
    assert!(
        dir.join("results/netd_31.json").exists(),
        "results artifact missing"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn matrix_chaos_schedules_decide_with_reproducible_fault_traces() {
    let dir_a = scratch_dir("chaos-a");
    let dir_b = scratch_dir("chaos-b");
    // Every canonical MATRIX schedule must run to decision on real TCP
    // links, with agreement asserted by the harness across the survivors.
    for chaos in ["drop:0.4", "dup:0.35", "partition:5:120", "crash:3:100"] {
        let stdout = netd(
            &dir_a,
            &[
                "--cluster",
                "--n",
                "7",
                "--t",
                "1",
                "--f",
                "1",
                "--chaos",
                chaos,
                "--phase",
                "cells",
                "--runs",
                "1",
                "--seed",
                "42",
                "--timeout-secs",
                "120",
            ],
        );
        assert!(stdout.contains("decided"), "chaos {chaos}:\n{stdout}");
    }
    // Reproducibility: rerunning the drop schedule under the same seed in
    // a fresh directory must emit a byte-identical fault-trace artifact.
    for dir in [&dir_a, &dir_b] {
        netd(
            dir,
            &[
                "--cluster",
                "--n",
                "7",
                "--t",
                "1",
                "--f",
                "1",
                "--chaos",
                "drop:0.4",
                "--phase",
                "cells",
                "--runs",
                "2",
                "--seed",
                "42",
                "--timeout-secs",
                "120",
            ],
        );
    }
    let trace_a =
        std::fs::read(dir_a.join("results/netd_chaos_42.json")).expect("fault-trace artifact");
    let trace_b =
        std::fs::read(dir_b.join("results/netd_chaos_42.json")).expect("fault-trace artifact");
    assert!(
        trace_a == trace_b,
        "same seed must reproduce the same per-link fault trace"
    );
    let trace = String::from_utf8(trace_a).expect("utf8 artifact");
    assert!(
        trace.contains("\"sched\":\"0x") && trace.contains("\"chaos\":\"drop:0.4\""),
        "trace artifact shape: {trace}"
    );
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn divergent_kill9_proves_survivor_progress_before_the_respawn_converges() {
    let dir = scratch_dir("divergent");
    let stdout = netd(
        &dir,
        &[
            "--cluster",
            "--n",
            "7",
            "--t",
            "1",
            "--phase",
            "kill9",
            "--kill",
            "2:divergent",
            "--slots",
            "8",
            "--window",
            "4",
            "--seed",
            "99",
            "--timeout-secs",
            "120",
        ],
    );
    // Survivor progress is proven while the victim is down, before the
    // respawn exists; then the respawned victim replays its WAL and the
    // whole cluster converges on one digest at the full prefix.
    assert!(
        stdout.contains("survivors progressed to ≥"),
        "no survivor-progress proof:\n{stdout}"
    );
    assert!(
        stdout.contains("converged at prefix 8") && stdout.contains("after 1 restart"),
        "divergent kill9 did not converge:\n{stdout}"
    );
    let bench = std::fs::read_to_string(dir.join("BENCH_netd.json")).expect("BENCH_netd.json");
    // The kill landed at (at least) the configured prefix 2 — with a
    // pipelining window the victim may overshoot between observations,
    // so the exact landing prefix is wall-clock dependent.
    assert!(
        bench.contains("\"divergent\":true")
            && bench.contains("\"killed_at_prefix\":")
            && bench.contains("\"survivor_floor\":")
            && bench.contains("\"converged\":true"),
        "bench: {bench}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_cell_records_wall_clock_rates_next_to_simnet_rates() {
    let dir = scratch_dir("campaign");
    let stdout = netd(
        &dir,
        &[
            "--campaign",
            "smoke:0",
            "--runs",
            "1",
            "--timeout-secs",
            "120",
        ],
    );
    assert!(
        stdout.contains("wall-clock fast-decision rate"),
        "campaign summary missing:\n{stdout}"
    );
    let report = std::fs::read_to_string(dir.join("results/campaign_netd_smoke.json"))
        .expect("campaign artifact");
    assert!(
        report.contains("\"netd\":{\"fast\":") && report.contains("\"simnet\":{\"fast\":"),
        "campaign artifact shape: {report}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
