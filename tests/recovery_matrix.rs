//! The crash-recovery acceptance matrix (ISSUE 5).
//!
//! Three headline guarantees of the recovery subsystem, end to end:
//!
//! 1. **Restart with amnesia at full Byzantine strength** (`f = t` plus a
//!    `CrashMode::Restart` window): the victim reboots through its
//!    `Recoverable` hook, replays snapshot + WAL, re-derives a committed
//!    prefix byte-identical to what it persisted before dying (validated
//!    per slot by the checker's `recovered-prefix` invariant), catches up
//!    the rest via the `t+1`-quorum protocol, and the cluster converges.
//! 2. **Sustained probabilistic loss** (`p ≥ 0.2` on every link, the whole
//!    run): plain runs starve — dropped protocol messages are gone for
//!    good — while the same seeds terminate once the `dex-core` resend
//!    layer is wrapped around the very same actors.
//! 3. **Fault-free artifacts are untouched**: the recovery layer is
//!    strictly additive — a chaos-free seed-31 trace renders byte-stably
//!    and keeps the pre-change artifact shape (no chaos block, same
//!    `results/trace_31.json` path).

use dex::obs;
use dex::prelude::*;
use dex::replication::{
    run_generic_cluster, Command, Durability, FileWal, GenericClusterOptions, KvStore, Node,
    Replica, TotalOrder,
};

const TARGET_SLOTS: u64 = 4;

/// Builds the traced `f = t` restart cluster: six correct durable replicas
/// plus one Byzantine (id 6), with replica `victim` crashing into amnesia
/// over `[40, 6000)`. `durability` builds each correct replica's store
/// from its id — in-memory for the matrix sweep, file-backed for the
/// real-medium case.
fn run_restart_cluster(
    seed: u64,
    victim: usize,
    durability: impl Fn(usize) -> Durability<KvStore>,
) -> (Simulation<Node<KvStore>>, obs::RunTrace) {
    let cfg = SystemConfig::new(7, 1).unwrap();
    let requests = vec![
        Command::put(1, 10),
        Command::put(2, 20),
        Command::add(1, 7),
        Command::delete(2),
    ];
    let nodes: Vec<Node<KvStore>> = (0..7)
        .map(|i| {
            if i == 6 {
                Node::Byz(dex::adversary::ByzantineActor::new(
                    ByzantineStrategy::EchoPoison {
                        values: vec![Command::put(666, 666), Command::put(999, 999)],
                    },
                ))
            } else {
                let mut r = Replica::new(
                    cfg,
                    ProcessId::new(i),
                    ProcessId::new(0),
                    requests.clone(),
                    TARGET_SLOTS,
                );
                r.enable_durability(durability(i));
                r.enable_obs();
                Node::Correct(r)
            }
        })
        .collect();
    let mut sim = Simulation::builder(nodes)
        .seed(seed)
        .delay(DelayModel::Uniform { min: 1, max: 10 })
        .faults(FaultSchedule::none().crash_restart(ProcessId::new(victim), 40, 6_000))
        .recoverable()
        .build();
    assert!(sim.run(50_000_000).quiescent, "seed {seed} did not drain");

    let processes: Vec<obs::ProcessTrace> = sim
        .actors()
        .iter()
        .map(|node| match node {
            Node::Correct(r) => r.obs().trace(),
            // The Byzantine process records nothing; the checker excludes
            // ids listed in `faulty` anyway.
            Node::Byz(_) => obs::Recorder::new(6).trace(),
        })
        .collect();
    let trace = obs::RunTrace {
        meta: obs::TraceMeta {
            seed,
            n: 7,
            t: 1,
            algo: "replication".to_string(),
            rules: obs::SchemeRules::Opaque,
            faulty: vec![6],
            legend: Vec::new(),
            chaos: Some(obs::ChaosMeta {
                last_heal: 6_000,
                eventually_clean: false,
                crashes: vec![(victim as u16, 40, Some(6_000))],
            }),
            pipeline: None,
        },
        processes,
    };
    (sim, trace)
}

#[test]
fn restart_matrix_rederives_prefixes_and_passes_the_checker() {
    for (seed, victim) in [(5, 3), (17, 2), (23, 5)] {
        let (sim, trace) = run_restart_cluster(seed, victim, |_| Durability::mem(2));
        let actors = sim.actors();

        // Convergence: every correct replica committed the full prefix,
        // and all logs/digests are byte-identical — the restarted victim's
        // re-derived log included.
        let mut logs = Vec::new();
        let mut digests = Vec::new();
        for node in actors {
            let Node::Correct(r) = node else { continue };
            assert_eq!(
                r.log().committed_prefix(),
                TARGET_SLOTS as usize,
                "seed {seed}: replica {} missed slots",
                r.me()
            );
            logs.push(r.log().prefix());
            digests.push(r.machine().digest());
        }
        assert!(
            logs.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: diverging logs {logs:?}"
        );
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
        for cmd in logs.iter().flatten() {
            assert_ne!(
                *cmd,
                Command::put(666, 666),
                "seed {seed}: poison committed"
            );
            assert_ne!(
                *cmd,
                Command::put(999, 999),
                "seed {seed}: poison committed"
            );
        }

        // The reboot actually happened (amnesia, not deferred delivery).
        let Node::Correct(v) = &actors[victim] else {
            panic!("victim is correct")
        };
        assert_eq!(v.restarts(), 1, "seed {seed}: restart hook must fire");

        // Checker: the victim's restart-time CatchUp events — one per slot
        // re-derived from snapshot + WAL — must each match the value the
        // cluster committed pre-crash. That is the byte-identity claim,
        // validated slot by slot.
        let report = obs::check(&trace);
        assert!(report.is_ok(), "seed {seed}: {:?}", report.violations);
        let recovered = report
            .checks
            .iter()
            .find(|(name, _)| *name == "recovered-prefix")
            .map(|(_, count)| *count)
            .unwrap_or(0);
        assert!(
            recovered > 0,
            "seed {seed}: recovery must re-derive committed slots"
        );
    }
}

#[test]
fn restart_recovery_holds_on_a_file_backed_wal() {
    // Same cluster as the matrix sweep, but every correct replica logs to
    // a real file: appends go through fsync, the crash discards only the
    // unsynced buffer, and restart replays from disk. The medium must be
    // invisible to the protocol — logs and checker verdict match the
    // MemWal run for the same seed and victim bit for bit.
    let (seed, victim) = (5, 3);
    let dir = std::env::temp_dir().join(format!(
        "dex-recovery-filewal-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let (file_sim, file_trace) = run_restart_cluster(seed, victim, |i| {
        let path = dir.join(format!("replica-{i}.wal"));
        let _ = std::fs::remove_file(&path);
        Durability::new(Box::new(FileWal::<Command>::open(path).unwrap()), 2)
    });
    let (mem_sim, _) = run_restart_cluster(seed, victim, |_| Durability::mem(2));

    let logs = |sim: &Simulation<Node<KvStore>>| -> Vec<Vec<Command>> {
        sim.actors()
            .iter()
            .filter_map(|node| match node {
                Node::Correct(r) => Some(r.log().prefix()),
                Node::Byz(_) => None,
            })
            .collect()
    };
    let file_logs = logs(&file_sim);
    assert_eq!(
        file_logs,
        logs(&mem_sim),
        "storage medium leaked into consensus"
    );
    assert!(file_logs.iter().all(|l| l.len() == TARGET_SLOTS as usize));

    // The reboot really went through the disk: the restart hook fired and
    // the victim's WAL file exists on the real filesystem.
    let Node::Correct(v) = &file_sim.actors()[victim] else {
        panic!("victim is correct")
    };
    assert_eq!(v.restarts(), 1, "restart hook must fire");
    assert!(dir.join(format!("replica-{victim}.wal")).exists());

    let report = obs::check(&file_trace);
    assert!(report.is_ok(), "{:?}", report.violations);
    assert!(
        report
            .checks
            .iter()
            .any(|(name, count)| *name == "recovered-prefix" && *count > 0),
        "recovery must re-derive committed slots from the file store"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sustained_loss_deadlocks_plain_runs_but_resend_restores_termination() {
    // p = 0.25 ≥ 0.2 on *every* link for the entire run — no healing
    // instant, so the checker's GST framing never applies and only
    // retransmission can restore the n−t views the fast paths need.
    let mut starved = 0;
    for seed in [31, 32, 33] {
        let options = GenericClusterOptions {
            faults: FaultSchedule::none().lossy_link(None, None, 0.25, 0.0),
            require_convergence: false,
            ..GenericClusterOptions::new(
                SystemConfig::new(7, 1).unwrap(),
                vec![vec![81u64, 82, 83]; 7],
                3,
                seed,
            )
        };
        let plain = run_generic_cluster::<TotalOrder<u64>>(options.clone());
        if plain.logs.iter().flatten().any(|log| log.len() < 3) {
            starved += 1;
        }

        let reliable = run_generic_cluster::<TotalOrder<u64>>(GenericClusterOptions {
            reliable: true,
            require_convergence: true,
            ..options
        });
        assert!(
            reliable.converged(),
            "seed {seed}: resend layer must restore liveness: {:?}",
            reliable.logs
        );
    }
    assert!(
        starved > 0,
        "sustained 25% loss must starve at least one plain run"
    );
}

#[test]
fn fault_free_seed_31_artifact_keeps_the_pre_change_shape() {
    // The exact spec scripts/ci.sh pins with cmp: chaos-free, seed 31.
    let spec = RunSpec {
        f: 1,
        workload: WorkloadSpec::Bernoulli { p: 0.8 },
        adversary: AdversarySpec::Equivocate,
        runs: 3,
        seed: 31,
        trace: true,
        ..RunSpec::default()
    };
    let render = |spec: &RunSpec| {
        let traced = spec.traced(0).expect("valid spec");
        let report = obs::check(&traced.trace);
        assert!(report.is_ok(), "{:?}", report.violations);
        obs::json::render(&traced.trace, &report)
    };
    let first = render(&spec);
    let second = render(&spec);
    assert_eq!(
        first, second,
        "fault-free artifacts must replay byte-for-byte"
    );
    // The recovery layer is additive: chaos-free artifacts carry no chaos
    // block, no recovery events, and keep the pre-chaos path.
    assert!(!first.contains("\"chaos\":{"));
    assert!(!first.contains("\"catch_up\""));
    assert!(!first.contains("\"resend\""));
    assert_eq!(spec.trace_artifact(), "results/trace_31.json");
}
