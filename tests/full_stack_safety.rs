//! Cross-crate safety matrix (E10): Lemmas 1–3 must hold for every
//! algorithm × adversary × workload × underlying-consensus combination.

use dex::adversary::ByzantineStrategy;
use dex::harness::runner::{run_batch, Algo, BatchSpec, Placement, UnderlyingKind};
use dex::simnet::DelayModel;
use dex::types::SystemConfig;
use dex::workloads::{BernoulliMix, InputGenerator, Unanimous, UniformRandom};

fn grid(underlying: UnderlyingKind, runs: usize) {
    let t = 1usize;
    let cfg = SystemConfig::new(7 * t + 1, t).unwrap();
    let strategies: Vec<ByzantineStrategy<u64>> = vec![
        ByzantineStrategy::Silent,
        ByzantineStrategy::ConsistentLie { value: 0 },
        ByzantineStrategy::Equivocate { values: vec![0, 1] },
        ByzantineStrategy::EchoPoison { values: vec![0, 1] },
        ByzantineStrategy::CrashMid { value: 1, reach: 4 },
    ];
    let workloads: Vec<Box<dyn InputGenerator + Sync>> = vec![
        Box::new(Unanimous { value: 1 }),
        Box::new(BernoulliMix { p: 0.7, a: 1, b: 0 }),
        Box::new(UniformRandom { domain: 3 }),
    ];
    for algo in [Algo::DexFreq, Algo::DexPrv { m: 1 }, Algo::Bosco] {
        for strategy in &strategies {
            for workload in &workloads {
                let stats = run_batch(&BatchSpec {
                    chaos: dex::harness::spec::ChaosSpec::None,
                    config: cfg,
                    algo,
                    underlying,
                    strategy: strategy.clone(),
                    f: t,
                    placement: Placement::RandomK,
                    workload: workload.as_ref(),
                    delay: DelayModel::Uniform { min: 1, max: 20 },
                    runs,
                    seed0: 77,
                    max_events: 20_000_000,
                    aggregate: false,
                });
                assert!(
                    stats.clean(),
                    "{} / {} / {}: {stats:?}",
                    algo.label(),
                    strategy.label(),
                    workload.name()
                );
            }
        }
    }
}

#[test]
fn safety_grid_with_oracle_underlying() {
    grid(UnderlyingKind::Oracle, 8);
}

#[test]
fn safety_grid_with_randomized_underlying() {
    // The full randomized stack (reliable broadcast + binary consensus) as
    // the fallback engine — slower, so fewer runs.
    grid(UnderlyingKind::Mvc { coin_seed: 13 }, 3);
}

#[test]
fn underlying_only_baseline_is_safe_too() {
    let cfg = SystemConfig::new(8, 1).unwrap();
    let workload = UniformRandom { domain: 3 };
    let stats = run_batch(&BatchSpec {
        chaos: dex::harness::spec::ChaosSpec::None,
        config: cfg,
        algo: Algo::UnderlyingOnly,
        underlying: UnderlyingKind::Oracle,
        strategy: ByzantineStrategy::Silent,
        f: 1,
        placement: Placement::RandomK,
        workload: &workload,
        delay: DelayModel::Uniform { min: 1, max: 20 },
        runs: 20,
        seed0: 5,
        max_events: 5_000_000,
        aggregate: false,
    });
    assert!(stats.clean(), "{stats:?}");
    assert_eq!(stats.steps.mean(), 2.0);
}
