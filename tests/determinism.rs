//! Full-stack determinism: identical seeds reproduce identical executions
//! bit-for-bit, across every algorithm and adversary. This is what makes
//! every number in EXPERIMENTS.md reproducible.

use dex::adversary::{ByzantineStrategy, FaultPlan};
use dex::harness::runner::{run_instance, Algo, RunInstance, UnderlyingKind};
use dex::simnet::DelayModel;
use dex::types::{InputVector, SystemConfig};

fn spec(algo: Algo, underlying: UnderlyingKind, seed: u64) -> RunInstance {
    let config = SystemConfig::new(8, 1).unwrap();
    RunInstance {
        faults: dex::simnet::FaultSchedule::none(),
        config,
        algo,
        underlying,
        strategy: ByzantineStrategy::EchoPoison { values: vec![0, 9] },
        fault_plan: FaultPlan::last_k(config, 1),
        input: InputVector::new(vec![1, 1, 1, 0, 1, 0, 1, 1]),
        delay: DelayModel::Exponential { mean: 7 },
        seed,
        max_events: 20_000_000,
        aggregate: false,
    }
}

#[test]
fn identical_seeds_reproduce_runs() {
    for algo in [Algo::DexFreq, Algo::DexPrv { m: 1 }, Algo::Bosco] {
        let a = run_instance(&spec(algo, UnderlyingKind::Oracle, 42));
        let b = run_instance(&spec(algo, UnderlyingKind::Oracle, 42));
        assert_eq!(a, b, "{} must replay identically", algo.label());
    }
}

#[test]
fn different_seeds_change_schedules() {
    let a = run_instance(&spec(Algo::DexFreq, UnderlyingKind::Oracle, 1));
    let b = run_instance(&spec(Algo::DexFreq, UnderlyingKind::Oracle, 2));
    // Values must agree across runs only *within* a run; message counts
    // almost surely differ between seeds.
    assert!(a.agreement_ok() && b.agreement_ok());
    assert_ne!(
        (a.messages, a.outcomes),
        (b.messages, b.outcomes),
        "distinct seeds should explore distinct schedules"
    );
}

#[test]
fn randomized_underlying_replays_too() {
    let a = run_instance(&spec(
        Algo::DexFreq,
        UnderlyingKind::Mvc { coin_seed: 3 },
        9,
    ));
    let b = run_instance(&spec(
        Algo::DexFreq,
        UnderlyingKind::Mvc { coin_seed: 3 },
        9,
    ));
    assert_eq!(a, b);
}
