//! End-to-end tests of the trace/observability layer: every tier-1
//! scenario must replay cleanly through the `dex-obs` invariant checker,
//! the JSON artifact must be byte-stable for a fixed seed, and a
//! deliberately unsound legality pair must be *caught*.

use dex::adversary::{ByzantineStrategy, FaultPlan};
use dex::conditions::LegalityPair;
use dex::core::{DexActor, DexProcess};
use dex::harness::runner::{
    run_instance_traced, traced_batch_run, Algo, BatchSpec, Placement, RunInstance, UnderlyingKind,
};
use dex::harness::AnyUc;
use dex::obs::{check, ProcessTrace, RunTrace, SchemeRules, TraceMeta};
use dex::simnet::{DelayModel, Simulation};
use dex::types::{InputVector, ProcessId, SystemConfig, View};
use dex::workloads::BernoulliMix;

fn base_spec(n: usize, t: usize, algo: Algo, input: InputVector<u64>) -> RunInstance {
    RunInstance {
        faults: dex::simnet::FaultSchedule::none(),
        config: SystemConfig::new(n, t).unwrap(),
        algo,
        underlying: UnderlyingKind::Oracle,
        strategy: ByzantineStrategy::Silent,
        fault_plan: FaultPlan::none(),
        input,
        delay: DelayModel::Uniform { min: 1, max: 10 },
        seed: 7,
        max_events: 1_000_000,
        aggregate: false,
    }
}

fn assert_clean(spec: &RunInstance) {
    let traced = run_instance_traced(spec);
    assert!(traced.result.quiescent && traced.result.agreement_ok());
    let report = check(&traced.trace);
    assert!(
        report.is_ok(),
        "{} violations: {:?}",
        spec.algo.label(),
        report.violations
    );
    assert!(report.total_checks() > 0);
}

#[test]
fn unanimous_one_step_run_checks_clean() {
    let spec = base_spec(7, 1, Algo::DexFreq, InputVector::unanimous(7, 3));
    let traced = run_instance_traced(&spec);
    assert_eq!(traced.result.max_steps(), Some(1));
    let report = check(&traced.trace);
    assert!(report.is_ok(), "{:?}", report.violations);
    // A one-step run must actually exercise the P1 invariant.
    let p1_checks = report
        .checks
        .iter()
        .find(|(name, _)| *name == "one-step-p1")
        .map(|(_, count)| *count)
        .unwrap();
    assert_eq!(p1_checks, 7);
}

#[test]
fn split_fallback_run_checks_clean() {
    // 4 vs 3: margin 1 ≤ 4t and ≤ 2t ⇒ every process falls back.
    let input = InputVector::new(vec![3, 3, 3, 3, 9, 9, 9]);
    assert_clean(&base_spec(7, 1, Algo::DexFreq, input));
}

#[test]
fn privileged_pair_run_checks_clean() {
    let input = InputVector::new(vec![1, 1, 1, 1, 1, 0]);
    let spec = base_spec(6, 1, Algo::DexPrv { m: 1 }, input);
    let traced = run_instance_traced(&spec);
    assert_eq!(traced.result.max_steps(), Some(1));
    let report = check(&traced.trace);
    assert!(report.is_ok(), "{:?}", report.violations);
}

#[test]
fn adversarial_runs_check_clean() {
    for seed in 0..5 {
        let spec = RunInstance {
            faults: dex::simnet::FaultSchedule::none(),
            fault_plan: FaultPlan::last_k(SystemConfig::new(7, 1).unwrap(), 1),
            strategy: ByzantineStrategy::EchoPoison { values: vec![3, 9] },
            seed,
            ..base_spec(7, 1, Algo::DexFreq, InputVector::unanimous(7, 3))
        };
        let traced = run_instance_traced(&spec);
        let report = check(&traced.trace);
        assert!(report.is_ok(), "seed {seed}: {:?}", report.violations);
    }
}

#[test]
fn baseline_runs_check_clean() {
    for algo in [Algo::Bosco, Algo::UnderlyingOnly, Algo::Brasileiro] {
        assert_clean(&base_spec(7, 1, algo, InputVector::unanimous(7, 3)));
    }
}

#[test]
fn traced_batch_run_matches_batch_derivation_and_is_stable() {
    let workload = BernoulliMix { p: 0.8, a: 1, b: 0 };
    let batch = BatchSpec {
        chaos: dex::harness::spec::ChaosSpec::None,
        config: SystemConfig::new(7, 1).unwrap(),
        algo: Algo::DexFreq,
        underlying: UnderlyingKind::Oracle,
        strategy: ByzantineStrategy::Equivocate { values: vec![0, 1] },
        f: 1,
        placement: Placement::RandomK,
        workload: &workload,
        delay: DelayModel::Uniform { min: 1, max: 10 },
        runs: 3,
        seed0: 42,
        max_events: 5_000_000,
        aggregate: false,
    };
    let a = traced_batch_run(&batch, 0);
    let b = traced_batch_run(&batch, 0);
    let ra = check(&a.trace);
    let rb = check(&b.trace);
    assert!(ra.is_ok(), "{:?}", ra.violations);
    // Same batch index ⇒ byte-identical artifact.
    assert_eq!(
        dex::obs::json::render(&a.trace, &ra),
        dex::obs::json::render(&b.trace, &rb)
    );
}

/// A deliberately unsound pair: `P1` fires on *any* plurality margin, far
/// below the `> 4t` the frequency legality proof requires. The checker
/// re-derives the sound threshold from the recorded `J1` snapshots, so a
/// run that one-steps through this pair must be flagged.
#[derive(Debug)]
struct BrokenPair {
    t: usize,
}

impl LegalityPair<u64> for BrokenPair {
    fn name(&self) -> &'static str {
        "broken"
    }
    fn t(&self) -> usize {
        self.t
    }
    fn p1(&self, view: &View<u64>) -> bool {
        view.frequency_margin() > 0
    }
    fn p2(&self, view: &View<u64>) -> bool {
        view.frequency_margin() > 2 * self.t
    }
    fn decide(&self, view: &View<u64>) -> Option<u64> {
        view.first_with_count().map(|(v, _)| *v)
    }
    fn in_c1(&self, _input: &InputVector<u64>, _k: usize) -> bool {
        true
    }
    fn in_c2(&self, _input: &InputVector<u64>, _k: usize) -> bool {
        true
    }
}

#[test]
fn checker_flags_unsound_one_step_pair() {
    // 5 vs 2 with n = 7, t = 1: the reachable margin is at most 3 < 4t + 1,
    // so a sound frequency pair never one-steps — but BrokenPair does.
    let cfg = SystemConfig::new(7, 1).unwrap();
    let input = InputVector::new(vec![1, 1, 1, 1, 1, 0, 0]);
    let actors: Vec<_> = cfg
        .processes()
        .map(|me| {
            let mut actor = DexActor::new(
                DexProcess::new(
                    cfg,
                    me,
                    BrokenPair { t: cfg.t() },
                    AnyUc::oracle(cfg, me, ProcessId::new(0)),
                ),
                *input.get(me),
            );
            actor.process_mut().enable_obs();
            actor
        })
        .collect();
    let mut sim = Simulation::builder(actors)
        .seed(3)
        .delay(DelayModel::Uniform { min: 1, max: 10 })
        .build();
    assert!(sim.run(1_000_000).quiescent);
    let one_stepped = sim
        .actors()
        .iter()
        .any(|a| a.decision().is_some_and(|d| d.depth.get() == 1));
    assert!(one_stepped, "broken pair should have one-stepped somewhere");
    let processes: Vec<ProcessTrace> = sim
        .actors()
        .iter()
        .map(|a| a.process().obs().trace())
        .collect();
    let run = RunTrace {
        meta: TraceMeta {
            seed: 3,
            n: 7,
            t: 1,
            algo: "dex-broken".to_string(),
            rules: SchemeRules::Frequency,
            faulty: Vec::new(),
            legend: Vec::new(),
            chaos: None,
            pipeline: None,
        },
        processes,
    };
    let report = check(&run);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "one-step-p1"),
        "expected a one-step-p1 violation, got {:?}",
        report.violations
    );
}
