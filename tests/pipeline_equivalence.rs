//! Property-based pipeline/sequential equivalence: for arbitrary windows,
//! batch sizes, slot counts and seeds, the pipelined engine commits a log
//! identical, slot for slot, to the sequential window-1 chain over the
//! same client stream — pipelining reorders network traffic, never the
//! log. A second property keeps the claim under a healing partition: a
//! timed cut holds cross-cut traffic while slots stay in flight, and the
//! post-heal log must still match the fault-free sequential reference.

use dex::replication::{run_generic_cluster, GenericClusterOptions, TotalOrder};
use dex::simnet::FaultSchedule;
use dex::types::{ProcessId, SystemConfig};
use dex::workloads::slot_batches;
use proptest::prelude::*;

const N: usize = 7;
const T: usize = 1;

/// Runs one cluster over the `slot_batches(seed, slots, batch)` stream and
/// returns the committed log of replica 0 (convergence is asserted inside
/// the runner, so any correct replica's log is *the* log).
fn committed_log(
    window: u64,
    batch: u64,
    slots: u64,
    seed: u64,
    faults: FaultSchedule,
) -> Vec<Vec<u64>> {
    let config = SystemConfig::new(N, T).unwrap();
    let pending = vec![slot_batches(seed, slots, batch); N];
    let outcome = run_generic_cluster::<TotalOrder<Vec<u64>>>(GenericClusterOptions {
        window,
        faults,
        ..GenericClusterOptions::new(config, pending, slots, seed)
    });
    assert!(outcome.converged(), "cluster must converge");
    assert_eq!(outcome.net.payload_clones, 0, "slab fast path only");
    outcome.logs[0].clone().expect("replica 0 is correct")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn pipelined_log_equals_sequential_log_slot_for_slot(
        window in 2u64..=12,
        batch in 1u64..=5,
        slots in 2u64..=10,
        seed in 0u64..10_000,
    ) {
        let sequential = committed_log(1, batch, slots, seed, FaultSchedule::none());
        let pipelined = committed_log(window, batch, slots, seed, FaultSchedule::none());
        prop_assert_eq!(
            &sequential,
            &pipelined,
            "window {} diverged from the sequential chain",
            window
        );
        prop_assert_eq!(sequential.len(), slots as usize);
        for batch_values in &sequential {
            prop_assert_eq!(batch_values.len(), batch as usize);
        }
    }

    #[test]
    fn pipelined_log_survives_a_healing_partition(
        window in 2u64..=8,
        batch in 1u64..=4,
        seed in 0u64..10_000,
        cut in 1u64..40,
        span in 20u64..200,
        side_size in 1usize..=2 * T,
    ) {
        let slots = 6;
        // Cut up to 2t replicas (never replica 0 — it coordinates the
        // oracle fallback) away from the rest for [cut, cut + span): held
        // messages arrive after the heal, an asynchronous schedule with a
        // long-but-finite delay. GST framing: liveness after the heal,
        // and the log must match the fault-free sequential reference.
        let side = (1..=side_size).map(ProcessId::new);
        let faults = FaultSchedule::none().partition(side, cut, cut + span);
        let reference = committed_log(1, batch, slots, seed, FaultSchedule::none());
        let partitioned = committed_log(window, batch, slots, seed, faults);
        prop_assert_eq!(
            &reference,
            &partitioned,
            "window {} under a healing partition diverged",
            window
        );
    }
}
