//! Property-based full-stack tests: for *arbitrary* inputs, fault
//! placements, adversary strategies and schedules, the three consensus
//! properties hold and step counts respect the condition bounds.

use dex::adversary::{ByzantineStrategy, FaultPlan};
use dex::conditions::{FrequencyPair, LegalityPair};
use dex::harness::runner::{run_instance, Algo, Outcome, RunInstance, UnderlyingKind};
use dex::simnet::DelayModel;
use dex::types::{InputVector, ProcessId, SystemConfig};
use proptest::prelude::*;

const N: usize = 7;
const T: usize = 1;

fn strategy_strategy() -> impl Strategy<Value = ByzantineStrategy<u64>> {
    prop_oneof![
        Just(ByzantineStrategy::Silent),
        (0u64..3).prop_map(|value| ByzantineStrategy::ConsistentLie { value }),
        proptest::collection::vec(0u64..3, 1..3)
            .prop_map(|values| ByzantineStrategy::Equivocate { values }),
        proptest::collection::vec(0u64..3, 1..3)
            .prop_map(|values| ByzantineStrategy::EchoPoison { values }),
        (0u64..3, 0usize..N)
            .prop_map(|(value, reach)| ByzantineStrategy::CrashMid { value, reach }),
    ]
}

fn algo_strategy() -> impl Strategy<Value = Algo> {
    prop_oneof![
        Just(Algo::DexFreq),
        Just(Algo::DexPrv { m: 1 }),
        Just(Algo::Bosco),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn consensus_properties_hold_for_arbitrary_runs(
        entries in proptest::collection::vec(0u64..3, N),
        f in 0usize..=T,
        faulty_pos in 0usize..N - 1,
        strategy in strategy_strategy(),
        algo in algo_strategy(),
        seed in 0u64..10_000,
    ) {
        let cfg = SystemConfig::new(N, T).unwrap();
        let input = InputVector::new(entries);
        // Keep p0 correct: it coordinates the oracle underlying consensus.
        let fault_plan = if f == 0 {
            FaultPlan::none()
        } else {
            FaultPlan::from_ids(cfg, [ProcessId::new(1 + faulty_pos % (N - 1))])
        };
        let result = run_instance(&RunInstance {
        faults: dex::simnet::FaultSchedule::none(),
            config: cfg,
            algo,
            underlying: UnderlyingKind::Oracle,
            strategy,
            fault_plan: fault_plan.clone(),
            input: input.clone(),
            delay: DelayModel::Uniform { min: 1, max: 15 },
            seed,
            max_events: 20_000_000,
            aggregate: false,
        });

        // Termination (Lemma 1).
        prop_assert!(result.quiescent);
        prop_assert!(result.all_decided());
        // Agreement (Lemma 2).
        prop_assert!(result.agreement_ok());
        // Unanimity (Lemma 3).
        prop_assert!(result.unanimity_ok(&input, &fault_plan));
        // Sanity: faulty processes are reported as such.
        for p in fault_plan.faulty() {
            prop_assert!(matches!(result.outcomes[p.index()], Outcome::Faulty));
        }
    }

    /// Exact step bounds (Lemmas 4 & 5) hold in *well-behaved* runs — the
    /// regime the paper's step counts refer to. Lockstep delivery realises
    /// it: all first-exchange messages arrive before any second-exchange
    /// message.
    #[test]
    fn step_bounds_hold_in_well_behaved_runs(
        entries in proptest::collection::vec(0u64..2, N),
        f in 0usize..=T,
        seed in 0u64..10_000,
    ) {
        let cfg = SystemConfig::new(N, T).unwrap();
        let input = InputVector::new(entries);
        let pair = FrequencyPair::new(cfg).unwrap();
        let fault_plan = FaultPlan::last_k(cfg, f);
        let result = run_instance(&RunInstance {
        faults: dex::simnet::FaultSchedule::none(),
            config: cfg,
            algo: Algo::DexFreq,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::Silent,
            fault_plan,
            input: input.clone(),
            delay: DelayModel::Constant(1),
            seed,
            max_events: 20_000_000,
            aggregate: false,
        });
        prop_assert!(result.quiescent && result.agreement_ok() && result.all_decided());
        let steps = result.max_steps().unwrap();
        if pair.in_c1(&input, f) {
            prop_assert_eq!(steps, 1, "Lemma 4 violated on {}", input);
        } else if pair.in_c2(&input, f) {
            prop_assert!(steps <= 2, "Lemma 5 violated on {}: {} steps", input, steps);
        } else {
            prop_assert!(steps <= 4, "oracle fallback caps at 4 in lockstep runs");
        }
        // Expedited decisions return a value that was actually proposed.
        for r in result.decided() {
            if r.path != "fallback" {
                prop_assert!(input.as_slice().contains(&r.value));
            }
        }
    }

    /// Under arbitrary reordering, exact step counts can shift (IDB
    /// amplification adds a hop; a straggler may adopt the equally-fast
    /// oracle decision), but the *value*-level guarantee of the condition
    /// framework survives every schedule: inside `C²_f` all correct
    /// processes decide the plurality value of the correct proposals, and
    /// expedited decisions never exceed the amplified depth 3.
    #[test]
    fn condition_value_guarantee_under_arbitrary_reordering(
        entries in proptest::collection::vec(0u64..2, N),
        f in 0usize..=T,
        seed in 0u64..10_000,
    ) {
        let cfg = SystemConfig::new(N, T).unwrap();
        let input = InputVector::new(entries);
        let pair = FrequencyPair::new(cfg).unwrap();
        let fault_plan = FaultPlan::last_k(cfg, f);
        let result = run_instance(&RunInstance {
        faults: dex::simnet::FaultSchedule::none(),
            config: cfg,
            algo: Algo::DexFreq,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::Silent,
            fault_plan: fault_plan.clone(),
            input: input.clone(),
            delay: DelayModel::Uniform { min: 1, max: 15 },
            seed,
            max_events: 20_000_000,
            aggregate: false,
        });
        prop_assert!(result.quiescent && result.agreement_ok() && result.all_decided());
        if pair.in_c2(&input, f) {
            // Plurality of the correct entries (ties broken largest, as F).
            let correct_view = dex::types::View::from_options(
                input
                    .iter()
                    .map(|(p, v)| (!fault_plan.is_faulty(p)).then_some(*v))
                    .collect(),
            );
            let expected = *correct_view.first().expect("correct entries exist");
            for r in result.decided() {
                prop_assert_eq!(r.value, expected,
                    "inside C2_{} the decision is forced on {}", f, input);
                if r.path != "fallback" {
                    prop_assert!(r.steps <= 3,
                        "expedited depth is at most 2 + one amplification hop, got {}",
                        r.steps);
                }
            }
        }
    }
}
