//! The scheduling adversary: asynchrony lets the adversary choose any
//! finite per-link delay. These tests combine targeted link slowdowns with
//! Byzantine behaviour and check that safety never bends and that the
//! paper's fast-path guarantees degrade exactly as predicted (a starved
//! process falls back without dragging anyone into disagreement).

use dex::adversary::{ByzantineStrategy, FaultPlan};
use dex::harness::runner::{run_instance, Algo, Outcome, RunInstance, UnderlyingKind};
use dex::simnet::DelayModel;
use dex::types::{InputVector, ProcessId, SystemConfig};

fn targeted(links: Vec<(usize, usize, u64)>) -> DelayModel {
    DelayModel::Targeted {
        base: Box::new(DelayModel::Uniform { min: 1, max: 5 }),
        links: links
            .into_iter()
            .map(|(f, t, d)| (ProcessId::new(f), ProcessId::new(t), d))
            .collect(),
    }
}

#[test]
fn starving_one_process_of_proposals_only_slows_that_process() {
    let cfg = SystemConfig::new(7, 1).unwrap();
    // Every proposal *to* p6 is delayed enormously; p6 still decides (via
    // the late messages or the fallback) and everyone agrees.
    let links: Vec<(usize, usize, u64)> = (0..6).map(|from| (from, 6, 50_000)).collect();
    for seed in 0..10 {
        let r = run_instance(&RunInstance {
            faults: dex::simnet::FaultSchedule::none(),
            config: cfg,
            algo: Algo::DexFreq,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::Silent,
            fault_plan: FaultPlan::none(),
            input: InputVector::unanimous(7, 3),
            delay: targeted(links.clone()),
            seed,
            max_events: 10_000_000,
            aggregate: false,
        });
        assert!(
            r.quiescent && r.agreement_ok() && r.all_decided(),
            "seed {seed}"
        );
        // The un-starved processes still enjoy the one-step path.
        for (i, o) in r.outcomes.iter().enumerate() {
            if i < 6 {
                if let Outcome::Decided(p) = o {
                    assert_eq!(p.steps, 1, "seed {seed}: p{i} took {} steps", p.steps);
                }
            }
        }
    }
}

#[test]
fn slow_coordinator_link_cannot_break_agreement() {
    let cfg = SystemConfig::new(7, 1).unwrap();
    // Split input (fallback path) and a crawling link to the oracle
    // coordinator from half the system: the fallback gets slow, not wrong.
    let links: Vec<(usize, usize, u64)> = (3..7).map(|from| (from, 0, 20_000)).collect();
    for seed in 0..10 {
        let r = run_instance(&RunInstance {
            faults: dex::simnet::FaultSchedule::none(),
            config: cfg,
            algo: Algo::DexFreq,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::Silent,
            fault_plan: FaultPlan::none(),
            input: InputVector::new(vec![3, 3, 3, 3, 9, 9, 9]),
            delay: targeted(links.clone()),
            seed,
            max_events: 10_000_000,
            aggregate: false,
        });
        assert!(
            r.quiescent && r.agreement_ok() && r.all_decided(),
            "seed {seed}"
        );
    }
}

#[test]
fn byzantine_plus_scheduling_adversary() {
    // Equivocator + targeted delays that deliver its lies fast and the
    // truth slowly: the strongest combination our model offers.
    let cfg = SystemConfig::new(7, 1).unwrap();
    let mut links = Vec::new();
    for to in 0..6usize {
        // Correct traffic among p0..p5 crawls…
        for from in 0..6usize {
            if from != to {
                links.push((from, to, 2_000));
            }
        }
    }
    for seed in 0..10 {
        let r = run_instance(&RunInstance {
            faults: dex::simnet::FaultSchedule::none(),
            config: cfg,
            algo: Algo::DexFreq,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::EchoPoison { values: vec![3, 9] },
            fault_plan: FaultPlan::last_k(cfg, 1),
            input: InputVector::unanimous(7, 3),
            delay: DelayModel::Targeted {
                base: Box::new(DelayModel::Constant(1)), // …while p6's lies fly
                links: links
                    .iter()
                    .map(|(f, t, d)| (ProcessId::new(*f), ProcessId::new(*t), *d))
                    .collect(),
            },
            seed,
            max_events: 10_000_000,
            aggregate: false,
        });
        assert!(
            r.quiescent && r.agreement_ok() && r.all_decided(),
            "seed {seed}"
        );
        assert!(
            r.unanimity_ok(&InputVector::unanimous(7, 3), &FaultPlan::last_k(cfg, 1)),
            "seed {seed}: unanimity must survive the combined adversary"
        );
    }
}
