//! The [`Strategy`] trait and the combinators this workspace uses.
//!
//! Strategies here are pure samplers: `sample` draws one value from the
//! distribution. There is no shrinking tree, which keeps every combinator a
//! few lines and object-safe enough for [`BoxedStrategy`].

use rand::rngs::StdRng;

/// A source of random test values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters produced values, resampling until `f` accepts one.
    ///
    /// # Panics
    ///
    /// Panics after 1000 consecutive rejections (the predicate is too
    /// restrictive for sampling without shrinking).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// A strategy always yielding clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// The result of [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 samples in a row: {}",
            self.whence
        );
    }
}

/// A type-erased strategy ([`Strategy::boxed`]); cheap to clone.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn ErasedStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

/// Object-safe sampling facade behind [`BoxedStrategy`].
trait ErasedStrategy<T> {
    fn sample_erased(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn sample_erased(&self, rng: &mut StdRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.inner.sample_erased(rng)
    }
}

/// Uniform choice among boxed strategies (backs [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for core::ops::RangeFull {
    type Value = u64;
    fn sample(&self, rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
