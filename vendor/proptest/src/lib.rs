//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the slice of proptest this workspace uses: the
//! [`Strategy`] trait with `prop_map`/`boxed`, range/tuple/`Just`
//! strategies, [`collection::vec`], [`option::of`]/[`option::weighted`],
//! the [`proptest!`]/[`prop_oneof!`]/`prop_assert*` macros and
//! [`ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case panics with the sampled inputs'
//!   `Debug` description (when available via the strategy) but is not
//!   minimized.
//! * **Deterministic seeding** — cases are derived from a fixed seed mixed
//!   with the test-function name, so failures are reproducible without a
//!   regression file. `*.proptest-regressions` files are ignored.

use rand::rngs::StdRng;

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Unused; kept for struct-update compatibility.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property case (carried by `prop_assert*` early returns).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

/// FNV-1a over a string: stable per-test seeds from test names.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Builds the per-test RNG. Override the base seed with the
/// `PROPTEST_SEED` environment variable to explore different samples.
pub fn test_rng(test_name: &str) -> StdRng {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x9E37_79B9_7F4A_7C15);
    StdRng::seed_from_u64(base ^ fnv1a(test_name))
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// A length specification: a fixed size or a size range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` samples.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `element` with length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Strategy producing `Option<V>` with a fixed `Some` probability.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        p_some: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_bool(self.p_some) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }

    /// `Some` with probability `p_some`, `None` otherwise.
    pub fn weighted<S: Strategy>(p_some: f64, inner: S) -> OptionStrategy<S> {
        OptionStrategy { p_some, inner }
    }

    /// `Some` with probability 0.5.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        weighted(0.5, inner)
    }
}

/// Arbitrary values (`proptest::arbitrary`): types with a canonical
/// full-domain strategy, reachable via [`any`].
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// A type with a canonical strategy covering its whole domain.
    pub trait Arbitrary: Sized {
        /// Draws one uniform value.
        fn generate(rng: &mut StdRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyStrategy<A> {
        _marker: core::marker::PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn sample(&self, rng: &mut StdRng) -> A {
            A::generate(rng)
        }
    }

    /// The canonical strategy for `A`, mirroring `proptest::prelude::any`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy {
            _marker: core::marker::PhantomData,
        }
    }

    macro_rules! impl_arbitrary_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(rng: &mut StdRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);
}

pub use arbitrary::any;

/// Sampling helpers (`proptest::sample`).
pub mod sample {
    use super::arbitrary::Arbitrary;
    use rand::rngs::StdRng;

    /// A position into a not-yet-known collection, mirroring
    /// `proptest::sample::Index`: stores a uniform fraction and projects it
    /// onto whatever length it is applied to.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Projects onto `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.raw as u128 * len as u128) >> 64) as usize
        }

        /// The element of `slice` this index selects.
        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            &slice[self.index(slice.len())]
        }
    }

    impl Arbitrary for Index {
        fn generate(rng: &mut StdRng) -> Self {
            Index {
                raw: rng.next_u64(),
            }
        }
    }
}

/// The `prop` alias module exposed by proptest's prelude
/// (`prop::collection::vec(...)`, `prop::sample::Index`, ...).
pub mod prop {
    pub use crate::{collection, option, sample, strategy};
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body; on failure the current
/// case fails with the stringified condition (plus optional formatted
/// context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($a),
                stringify!($b),
                a,
                b,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?}): {}",
                stringify!($a),
                stringify!($b),
                a,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests, mirroring proptest's macro of the same name.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn prop(x in 0u64..10, v in collection::vec(0u64..4, 5)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let run = move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    if let ::core::result::Result::Err(e) = run() {
                        panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_maps(pair in (0u8..4, 10u32..20).prop_map(|(a, b)| (a as u32) + b) ) {
            prop_assert!((10..24).contains(&pair));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u64..3, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn oneof_and_options(
            x in prop_oneof![Just(1u8), Just(2u8), (5u8..7)],
            o in crate::option::weighted(0.5, 0u8..2),
        ) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
            if let Some(v) = o { prop_assert!(v < 2); }
        }
    }

    #[test]
    fn failures_panic_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[test]
                fn always_fails(x in 0u8..4) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("always_fails"), "got: {msg}");
        assert!(msg.contains("assertion failed"), "got: {msg}");
    }
}
