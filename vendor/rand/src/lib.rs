//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of the `rand` 0.9 API it actually
//! uses: a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64), the [`SeedableRng`]/[`Rng`]/[`RngExt`] traits, and
//! [`seq::SliceRandom`] for `shuffle`/`choose`.
//!
//! Determinism is load-bearing for the whole repository (replayable
//! simulations are keyed by a `u64` seed), so the generator here is fixed
//! and self-contained; it never touches OS entropy.

/// Random number generator engines.
pub mod rngs {
    /// A deterministic xoshiro256++ generator, the workspace's standard RNG.
    ///
    /// Statistically strong enough for simulation workloads, trivially
    /// seedable from a `u64`, and with no platform dependencies.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Builds a generator whose full 256-bit state is expanded from
        /// `seed` with SplitMix64 (the reference xoshiro seeding procedure).
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }

        /// The next raw 64-bit output (xoshiro256++ step).
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// The next raw 32-bit output.
        #[inline]
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniformly distributed value of any [`crate::Standard`] type.
        #[inline]
        pub fn random<T: crate::Standard>(&mut self) -> T {
            T::standard(self)
        }

        /// A uniform sample from `range` (`a..b` or `a..=b`, integer or
        /// float).
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        #[inline]
        pub fn random_range<T, R: crate::SampleRange<T>>(&mut self, range: R) -> T {
            range.sample(self)
        }

        /// `true` with probability `p`.
        ///
        /// # Panics
        ///
        /// Panics unless `0 ≤ p ≤ 1`.
        #[inline]
        pub fn random_bool(&mut self, p: f64) -> bool {
            assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
            self.next_f64() < p
        }
    }

    impl crate::Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            StdRng::next_u64(self)
        }
    }
}

/// Seeding constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::seed_from_u64(seed)
    }
}

/// A source of randomness, mirroring `rand::Rng`.
///
/// The convenience samplers are defaulted methods built on [`Rng::next_u64`],
/// so trait-generic call sites (`R: Rng`) get the full API; the concrete
/// [`rngs::StdRng`] also carries inherent copies for call sites that don't
/// import the trait.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit output.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly distributed value of any [`Standard`] type.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// A uniform sample from `range` (`a..b` or `a..=b`, integer or float).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }
}

/// Extension alias kept for source compatibility with code written against
/// newer `rand` API sketches (`use rand::RngExt`). All functionality lives
/// on [`Rng`] / the inherent `StdRng` methods; this trait deliberately adds
/// nothing, so importing both `Rng` and `RngExt` never creates method
/// ambiguity.
pub trait RngExt: Rng {}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types samplable uniformly from their full domain (`rng.random()`).
pub trait Standard {
    /// Draws a uniform value.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

/// Ranges that can be sampled uniformly (`rng.random_range(a..b)`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use crate::Rng;

    /// Random operations on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([9u8].choose(&mut rng).is_some());
    }

    #[test]
    fn uniformish_distribution() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buckets = [0usize; 8];
        for _ in 0..80_000 {
            buckets[rng.random_range(0usize..8)] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "skewed bucket: {buckets:?}");
        }
    }
}
