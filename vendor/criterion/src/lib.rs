//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — measured with
//! plain `std::time::Instant` wall clocks instead of criterion's
//! statistical machinery.
//!
//! Each benchmark runs a short calibration pass to pick an iteration count
//! targeting ~`measure_ms` of wall time per sample, takes `sample_size`
//! samples, and prints the median, min and max ns/iter in a
//! criterion-flavoured one-line format. Set `CRITERION_MEASURE_MS` to
//! lengthen samples for steadier numbers.

use std::time::Instant;

/// Benchmark identifier: a function name plus a parameter rendering.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`, matching criterion's display format.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    iters: u64,
    /// Total elapsed nanoseconds across all sample batches.
    sample_ns: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one timing sample per batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.sample_ns.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters {
                std::hint::black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
            self.sample_ns.push(ns);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Unused compatibility knob (criterion's measurement-time hint).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        let sample_size = self.sample_size;
        self.parent.run_bench(&label, sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        let sample_size = self.sample_size;
        self.parent.run_bench(&label, sample_size, |b| f(b));
        self
    }

    /// Ends the group (a no-op here; kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    measure_ms: f64,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure_ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(10.0);
        Criterion { measure_ms }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored: the test
    /// runner passes `--bench`/`--test` flags through).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            parent: self,
        }
    }

    /// Benchmarks `f` without a group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_bench(name, 20, |b| f(b));
        self
    }

    fn run_bench<F: FnMut(&mut Bencher)>(&mut self, label: &str, sample_size: usize, mut f: F) {
        // Calibration: find an iteration count filling ~measure_ms per sample.
        let mut calib = Bencher {
            iters: 1,
            sample_ns: Vec::with_capacity(1),
        };
        f(&mut calib);
        let per_iter_ns = calib.sample_ns.first().copied().unwrap_or(1.0).max(0.5);
        let target_ns = self.measure_ms * 1e6;
        let iters = ((target_ns / per_iter_ns) as u64).clamp(1, 10_000_000);

        let mut bencher = Bencher {
            iters,
            sample_ns: Vec::with_capacity(sample_size),
        };
        f(&mut bencher);

        let mut samples = bencher.sample_ns;
        if samples.is_empty() {
            println!("{label:<40} (no samples: closure never called iter)");
            return;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!("{label:<40} time: [{min:>12.2} ns {median:>12.2} ns {max:>12.2} ns]");
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with --test flags; in that
            // mode just exercise one calibration pass cheaply.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("CRITERION_MEASURE_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_format() {
        let id = BenchmarkId::new("margin", 13);
        assert_eq!(id.id, "margin/13");
    }
}
