//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided (the subset `dex-threadnet` uses:
//! `unbounded`, `Sender`, `Receiver`, `RecvTimeoutError`), implemented on
//! top of `std::sync::mpsc`. The std channel is MPSC rather than MPMC,
//! which matches how the threaded runtime actually wires its channels: one
//! receiver per worker plus one for the dispatcher.

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    /// The receiving half of a channel.
    pub use std::sync::mpsc::Receiver;
    /// The sending half of a channel (cloneable).
    pub use std::sync::mpsc::Sender;
    /// Re-exported error types with crossbeam's names.
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(5u8).unwrap();
        let tx2 = tx.clone();
        tx2.send(6u8).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        assert_eq!(rx.recv().unwrap(), 6);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
