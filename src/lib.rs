//! # DEX — Doubly-Expedited One-Step Byzantine Consensus
//!
//! A complete Rust reproduction of *“Doubly-Expedited One-Step Byzantine
//! Consensus”* (Banu, Izumi, Wada — DSN 2010): the DEX algorithm, its
//! legality framework and both legal condition-sequence pairs, the
//! Identical Broadcast primitive, two underlying-consensus engines, the
//! Bosco baseline, a deterministic discrete-event simulator plus a real
//! threaded runtime, Byzantine adversaries, workloads, and an experiment
//! harness regenerating every table/figure-level claim of the paper.
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `dex-types` | process ids, configs, input vectors, views, step depths |
//! | [`conditions`] | `dex-conditions` | conditions, legality pairs, exhaustive verifier |
//! | [`broadcast`] | `dex-broadcast` | Identical Broadcast (Fig. 3), reliable broadcast |
//! | [`underlying`] | `dex-underlying` | oracle + randomized underlying consensus |
//! | [`core`] | `dex-core` | **Algorithm DEX** (Fig. 1) |
//! | [`baselines`] | `dex-baselines` | Bosco, underlying-only |
//! | [`adversary`] | `dex-adversary` | Byzantine strategies, fault plans |
//! | [`simnet`] | `dex-simnet` | deterministic discrete-event simulator |
//! | [`threadnet`] | `dex-threadnet` | threaded runtime over crossbeam channels |
//! | [`netd`] | `dex-netd` | process-level runtime: wire codec, TCP mesh, kill -9 cluster harness |
//! | [`workloads`] | `dex-workloads` | input-vector generators |
//! | [`metrics`] | `dex-metrics` | summaries, counters, tables |
//! | [`obs`] | `dex-obs` | structured event traces + trace-driven invariant checker |
//! | [`replication`] | `dex-replication` | replicated KV state machine on multi-slot DEX |
//! | [`harness`] | `dex-harness` | per-experiment drivers (E1–E13) |
//!
//! # Quickstart
//!
//! Seven processes, one tolerated fault, unanimous proposals — the paper's
//! flagship scenario, deciding in a **single communication step** — as one
//! [`RunSpec`](harness::spec::RunSpec):
//!
//! ```
//! use dex::prelude::*;
//!
//! let spec = RunSpec {
//!     workload: WorkloadSpec::Unanimous { value: 42 },
//!     runs: 5,
//!     ..RunSpec::default()
//! };
//! let stats = spec.run()?;
//! assert!(stats.clean());
//! assert_eq!(stats.steps.mean(), 1.0); // every decision in one step
//! # Ok::<(), String>(())
//! ```
//!
//! The same spec survives a healing partition — safety throughout, every
//! correct process deciding after the heal:
//!
//! ```
//! # use dex::prelude::*;
//! let spec = RunSpec {
//!     chaos: ChaosSpec::PartitionHeal { open: 5, heal: 120 },
//!     runs: 5,
//!     ..RunSpec::default()
//! };
//! assert!(spec.run()?.clean());
//! # Ok::<(), String>(())
//! ```
//!
//! See `examples/` for runnable scenarios (state-machine replication,
//! atomic commitment, equivocation defence, threaded execution) and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dex_adversary as adversary;
pub use dex_baselines as baselines;
pub use dex_broadcast as broadcast;
pub use dex_conditions as conditions;
pub use dex_core as core;
pub use dex_harness as harness;
pub use dex_metrics as metrics;
pub use dex_netd as netd;
pub use dex_obs as obs;
pub use dex_replication as replication;
pub use dex_simnet as simnet;
pub use dex_threadnet as threadnet;
pub use dex_types as types;
pub use dex_underlying as underlying;
pub use dex_workloads as workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use dex_adversary::{ByzantineStrategy, FaultPlan};
    pub use dex_conditions::{FrequencyPair, LegalityPair, PrivilegedPair};
    pub use dex_core::{DecisionPath, DexActor, DexMsg, DexProcess};
    pub use dex_harness::runner::{
        run_batch, run_instance, run_instance_traced, traced_batch_run, Algo, BatchSpec,
        BatchStats, Outcome, Placement, RunInstance, RunResult, TracedRun, UnderlyingKind,
    };
    pub use dex_harness::spec::{
        AdversarySpec, ChaosSpec, RunSpec, RuntimeSpec, UnderlyingSpec, WorkloadSpec,
    };
    pub use dex_obs::{check, CheckReport, Recorder, RunTrace};
    pub use dex_simnet::{
        Actor, Context, DelayModel, FaultSchedule, Simulation, SimulationBuilder, TraceDetail,
    };
    pub use dex_types::{InputVector, ProcessId, StepDepth, SystemConfig, View};
    pub use dex_underlying::{OracleConsensus, Outbox, ReducedMvc, UnderlyingConsensus};
}
