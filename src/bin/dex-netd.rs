//! `dex-netd` binary: the process-level TCP runtime.
//!
//! Two argv forms, dispatched by `dex_netd::cluster::main`:
//!
//! * `dex-netd --cluster [spec flags] [--port-base P] [--slots K]
//!   [--window W] [--phase cells|kill9|both]` — the parent harness:
//!   spawns `n` local child processes per run, drives fault-free MATRIX
//!   consensus cells and the kill -9 + respawn replication schedule, and
//!   writes `BENCH_netd.json` + `results/netd_<seed>.json`. Add
//!   `--chaos <schedule>` to inject the schedule's faults onto the live
//!   TCP links (per-link deterministic; fault traces land in
//!   `results/netd_chaos_<seed>.json`), and `--kill <victim>[:divergent]`
//!   to choose the kill9 victim — `:divergent` gives every replica its
//!   own pending stream and proves survivor progress while the victim
//!   is down.
//! * `dex-netd --campaign smoke:<index> [--runs R]` — runs one campaign
//!   cell on real processes and records the wall-clock fast-decision
//!   rate next to the simnet rate for the same cell
//!   (`results/campaign_netd_smoke.json`).
//! * `dex-netd --node I --mode consensus|replica …` — one child process
//!   (spawned by the parent; not normally invoked by hand).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(err) = dex_netd::cluster::main(args) {
        eprintln!("dex-netd: {err}");
        std::process::exit(1);
    }
}
