//! `dex-sim` — command-line driver for one-off consensus simulations.
//!
//! ```text
//! cargo run --release --bin dex-sim -- --n 7 --t 1 --algo dex-freq \
//!     --workload bernoulli:0.8 --adversary equivocate --f 1 --runs 50
//! ```
//!
//! The flag set *is* [`RunSpec`](dex::harness::spec::RunSpec): the binary
//! parses its arguments with `RunSpec::from_args`, so every experiment the
//! CLI can express is a serializable spec value (and vice versa —
//! `RunSpec::to_args` renders the exact invocation back).
//!
//! Flags (all optional):
//!
//! | flag | values | default |
//! |---|---|---|
//! | `--n` | system size | `7` |
//! | `--t` | fault bound | `1` |
//! | `--f` | actual faults per run (≤ t) | `0` |
//! | `--algo` | `dex-freq`, `dex-prv:<m>`, `bosco`, `plain`, `brasileiro`, `crash-adaptive` | `dex-freq` |
//! | `--workload` | `unanimous:<v>`, `bernoulli:<p>`, `uniform:<domain>`, `zipf:<domain>:<s>`, `split:<minor_count>` | `unanimous:1` |
//! | `--adversary` | `silent`, `lie:<v>`, `equivocate`, `echo-poison`, `crash-mid:<reach>` | `silent` |
//! | `--underlying` | `oracle`, `mvc` | `oracle` |
//! | `--placement` | `random-k`, `last-k` | `random-k` |
//! | `--delay` | `uniform:<min>:<max>`, `constant:<d>`, `exp:<mean>` | `uniform:1:10` |
//! | `--chaos` | `none`, `drop:<p>`, `dup:<p>`, `partition:<open>:<heal>`, `crash:<down>:<up>`, `crash-restart:<down>:<up>` | `none` |
//! | `--pipeline` | `<window>` or `<window>:<batch>` — run the pipelined replication engine instead of single-shot batches | `1:1` (off) |
//! | `--aggregate` | (no value) coalesce each correct process's per-tick echo/vote fan-out into one batched multicast | off |
//! | `--runtime` | `simnet` (deterministic simulation), `threadnet` (one OS thread per process), `netd` (one OS *process* per process — use the `dex-netd` binary) | `simnet` |
//! | `--stats` | (no value) print the per-class wire breakdown (init/echo/batch/other sends, batched echoes, bytes) — same line on every runtime | off |
//! | `--runs` | batch size | `20` |
//! | `--seed` | base seed | `0` |
//! | `--max-events` | delivery cap per run | `50000000` |
//! | `--trace` | (no value) record run 0, check invariants, write the trace artifact | off |
//!
//! Chaos runs write `results/trace_chaos_<label>_<seed>.json`; chaos-free
//! runs keep the `results/trace_<seed>.json` name (byte-identical to the
//! pre-chaos artifacts).
//!
//! A non-default `--pipeline <window>:<batch>` routes the invocation
//! through the pipelined replication engine: one cluster run committing
//! 16 slots of `batch` client values each with `window` slots in flight,
//! reporting committed-values-per-kilo-tick throughput and wire bytes.
//! With `--trace` it writes `results/trace_pipeline_<seed>.json`, whose
//! metadata carries the pipeline block (window, batch, bytes on wire) and
//! whose checker verdict includes the pipeline invariants.

use dex::harness::pipeline::{PipelineRun, DEFAULT_SLOTS};
use dex::harness::spec::RunSpec;
use dex::harness::stats::RunStats;
use std::process::ExitCode;
use std::time::Instant;

fn run_pipeline(spec: &RunSpec) -> ExitCode {
    let run = match PipelineRun::from_spec(spec, DEFAULT_SLOTS) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let outcome = run.execute();
    println!(
        "pipeline on {} | window {} | batch {} | {} slots",
        run.config, run.window, run.batch, run.slots
    );
    println!(
        "committed {} values in {} ticks — {} values/ktick",
        outcome.committed_values,
        outcome.ticks,
        outcome.values_per_ktick()
    );
    println!(
        "wire: {} bytes, {} multicasts, {} payload clones | recycled {} slot instances, coalesced {} UC messages, {} echoes",
        outcome.bytes_on_wire,
        outcome.multicasts,
        outcome.payload_clones,
        outcome.recycled,
        outcome.uc_coalesced,
        outcome.echoes_coalesced,
    );
    if spec.stats {
        println!("{}", RunStats::of_pipeline(&outcome).breakdown_line());
    }
    if !spec.trace {
        return ExitCode::SUCCESS;
    }
    let (_, trace) = run.traced();
    let report = dex::obs::check(&trace);
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("cannot create results/: {e}");
        return ExitCode::FAILURE;
    }
    let path = format!("results/trace_pipeline_{}.json", spec.seed);
    if let Err(e) = std::fs::write(&path, dex::obs::json::render(&trace, &report)) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "trace: re-executed with recording — {} invariant checks, {} violations → {path}",
        report.total_checks(),
        report.violations.len(),
    );
    for v in &report.violations {
        eprintln!(
            "trace violation [{}] p{}: {}",
            v.invariant, v.process, v.detail
        );
    }
    if report.is_ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!("VIOLATIONS DETECTED");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help") {
        println!("see the module docs at the top of src/bin/dex-sim.rs for the flag table");
        return ExitCode::SUCCESS;
    }
    let spec = match RunSpec::from_args(&args) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let config = match spec.config() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad configuration: {e}");
            return ExitCode::from(2);
        }
    };

    if !spec.pipeline.is_off() {
        return run_pipeline(&spec);
    }

    let started = Instant::now();
    let stats = match spec.run() {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let wall = started.elapsed();

    println!(
        "{} on {} | workload {} | adversary {} (f = {}) | chaos {} | {} runs",
        spec.algo.label(),
        config,
        spec.workload.flag(),
        spec.adversary.flag(),
        spec.f,
        spec.chaos.flag(),
        stats.runs
    );
    println!(
        "decision paths: 1-step {:.1}%  2-step {:.1}%  fallback {:.1}%",
        100.0 * stats.path_fraction("1-step"),
        100.0 * stats.path_fraction("2-step"),
        100.0 * stats.path_fraction("fallback"),
    );
    println!(
        "steps: mean {:.2}  min {:.0}  max {:.0}   latency: mean {:.1}  p99 {:.1}",
        stats.steps.mean(),
        stats.steps.min().unwrap_or(0.0),
        stats.steps.max().unwrap_or(0.0),
        stats.latency.mean(),
        stats.latency.quantile(0.99).unwrap_or(0.0),
    );
    println!(
        "messages/run: mean {:.0}   violations: agreement {}  unanimity {}  undecided {}  non-quiescent {}",
        stats.messages.mean(),
        stats.agreement_violations,
        stats.unanimity_violations,
        stats.undecided,
        stats.non_quiescent,
    );
    if spec.stats {
        println!(
            "{}",
            RunStats::of_batch(&stats, spec.runtime.clone(), wall).breakdown_line()
        );
    }
    let mut trace_ok = true;
    if spec.trace {
        let traced = spec.traced(0).expect("spec validated above");
        let report = dex::obs::check(&traced.trace);
        let events: usize = traced.trace.processes.iter().map(|p| p.events.len()).sum();
        if let Err(e) = std::fs::create_dir_all("results") {
            eprintln!("cannot create results/: {e}");
            return ExitCode::FAILURE;
        }
        let path = spec.trace_artifact();
        if let Err(e) = std::fs::write(&path, dex::obs::json::render(&traced.trace, &report)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "trace: run 0 re-executed with recording — {events} events, {} invariant checks, {} violations → {path}",
            report.total_checks(),
            report.violations.len(),
        );
        for v in &report.violations {
            eprintln!(
                "trace violation [{}] p{}: {}",
                v.invariant, v.process, v.detail
            );
        }
        trace_ok = report.is_ok();
    }
    if stats.clean() && trace_ok {
        println!("all runs clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("VIOLATIONS DETECTED");
        ExitCode::FAILURE
    }
}
