//! `dex-sim` — command-line driver for one-off consensus simulations.
//!
//! ```text
//! cargo run --release --bin dex-sim -- --n 7 --t 1 --algo dex-freq \
//!     --workload bernoulli:0.8 --adversary equivocate --f 1 --runs 50
//! ```
//!
//! Flags (all optional):
//!
//! | flag | values | default |
//! |---|---|---|
//! | `--n` | system size | `7` |
//! | `--t` | fault bound | `1` |
//! | `--f` | actual faults per run (≤ t) | `0` |
//! | `--algo` | `dex-freq`, `dex-prv:<m>`, `bosco`, `plain`, `brasileiro`, `crash-adaptive` | `dex-freq` |
//! | `--workload` | `unanimous:<v>`, `bernoulli:<p>`, `uniform:<domain>`, `zipf:<domain>:<s>`, `split:<minor_count>` | `unanimous:1` |
//! | `--adversary` | `silent`, `lie:<v>`, `equivocate`, `echo-poison`, `crash-mid:<reach>` | `silent` |
//! | `--underlying` | `oracle`, `mvc` | `oracle` |
//! | `--runs` | batch size | `20` |
//! | `--seed` | base seed | `0` |
//! | `--trace` | (no value) record run 0, check invariants, write `results/trace_<seed>.json` | off |

use dex::adversary::ByzantineStrategy;
use dex::harness::runner::{
    run_batch, traced_batch_run, Algo, BatchSpec, Placement, UnderlyingKind,
};
use dex::simnet::DelayModel;
use dex::types::SystemConfig;
use dex::workloads::{
    BernoulliMix, InputGenerator, SplitCount, Unanimous, UniformRandom, ZipfRequests,
};
use std::collections::HashMap;
use std::process::ExitCode;

/// Flags that take no value; their presence means "on".
const BOOLEAN_FLAGS: &[&str] = &["trace", "help"];

fn parse_flags() -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = if BOOLEAN_FLAGS.contains(&name) {
                "1".to_string()
            } else {
                args.next().unwrap_or_else(|| {
                    eprintln!("missing value for --{name}");
                    std::process::exit(2);
                })
            };
            flags.insert(name.to_string(), value);
        } else {
            eprintln!("unexpected argument: {arg} (flags look like --name value)");
            std::process::exit(2);
        }
    }
    flags
}

fn parse<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("could not parse --{key} {raw}");
            std::process::exit(2);
        }),
    }
}

fn main() -> ExitCode {
    let flags = parse_flags();
    if flags.contains_key("help") {
        println!("see the module docs at the top of src/bin/dex-sim.rs for the flag table");
        return ExitCode::SUCCESS;
    }
    let n: usize = parse(&flags, "n", 7);
    let t: usize = parse(&flags, "t", 1);
    let f: usize = parse(&flags, "f", 0);
    let runs: usize = parse(&flags, "runs", 20);
    let seed0: u64 = parse(&flags, "seed", 0);

    let config = match SystemConfig::new(n, t) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad configuration: {e}");
            return ExitCode::from(2);
        }
    };

    let algo_raw = flags.get("algo").map(String::as_str).unwrap_or("dex-freq");
    let algo = match algo_raw.split(':').collect::<Vec<_>>().as_slice() {
        ["dex-freq"] => Algo::DexFreq,
        ["dex-prv"] => Algo::DexPrv { m: 1 },
        ["dex-prv", m] => Algo::DexPrv {
            m: m.parse().expect("numeric privileged value"),
        },
        ["bosco"] => Algo::Bosco,
        ["plain"] | ["underlying-only"] => Algo::UnderlyingOnly,
        ["brasileiro"] => Algo::Brasileiro,
        ["crash-adaptive"] => Algo::CrashAdaptive,
        _ => {
            eprintln!("unknown --algo {algo_raw}");
            return ExitCode::from(2);
        }
    };

    let workload_raw = flags
        .get("workload")
        .map(String::as_str)
        .unwrap_or("unanimous:1");
    let workload: Box<dyn InputGenerator + Sync> =
        match workload_raw.split(':').collect::<Vec<_>>().as_slice() {
            ["unanimous", v] => Box::new(Unanimous {
                value: v.parse().expect("numeric value"),
            }),
            ["unanimous"] => Box::new(Unanimous { value: 1 }),
            ["bernoulli", p] => Box::new(BernoulliMix {
                p: p.parse().expect("probability"),
                a: 1,
                b: 0,
            }),
            ["uniform", d] => Box::new(UniformRandom {
                domain: d.parse().expect("domain size"),
            }),
            ["zipf", d, s] => Box::new(ZipfRequests {
                domain: d.parse().expect("domain size"),
                s: s.parse().expect("skew"),
            }),
            ["split", mc] => Box::new(SplitCount {
                major: 1,
                minor: 0,
                minor_count: mc.parse().expect("minority count"),
            }),
            _ => {
                eprintln!("unknown --workload {workload_raw}");
                return ExitCode::from(2);
            }
        };

    let adversary_raw = flags
        .get("adversary")
        .map(String::as_str)
        .unwrap_or("silent");
    let strategy = match adversary_raw.split(':').collect::<Vec<_>>().as_slice() {
        ["silent"] => ByzantineStrategy::Silent,
        ["lie", v] => ByzantineStrategy::ConsistentLie {
            value: v.parse().expect("numeric value"),
        },
        ["lie"] => ByzantineStrategy::ConsistentLie { value: 0 },
        ["equivocate"] => ByzantineStrategy::Equivocate { values: vec![0, 1] },
        ["echo-poison"] => ByzantineStrategy::EchoPoison { values: vec![0, 1] },
        ["crash-mid", reach] => ByzantineStrategy::CrashMid {
            value: 1,
            reach: reach.parse().expect("reach"),
        },
        _ => {
            eprintln!("unknown --adversary {adversary_raw}");
            return ExitCode::from(2);
        }
    };

    let underlying = match flags
        .get("underlying")
        .map(String::as_str)
        .unwrap_or("oracle")
    {
        "oracle" => UnderlyingKind::Oracle,
        "mvc" => UnderlyingKind::Mvc { coin_seed: seed0 },
        other => {
            eprintln!("unknown --underlying {other}");
            return ExitCode::from(2);
        }
    };

    let batch = BatchSpec {
        config,
        algo,
        underlying,
        strategy,
        f,
        placement: Placement::RandomK,
        workload: workload.as_ref(),
        delay: DelayModel::Uniform { min: 1, max: 10 },
        runs,
        seed0,
        max_events: 50_000_000,
    };
    let stats = run_batch(&batch);

    println!(
        "{} on {} | workload {} | adversary {} (f = {f}) | {} runs",
        algo.label(),
        config,
        workload.name(),
        adversary_raw,
        stats.runs
    );
    println!(
        "decision paths: 1-step {:.1}%  2-step {:.1}%  fallback {:.1}%",
        100.0 * stats.path_fraction("1-step"),
        100.0 * stats.path_fraction("2-step"),
        100.0 * stats.path_fraction("fallback"),
    );
    println!(
        "steps: mean {:.2}  min {:.0}  max {:.0}   latency: mean {:.1}  p99 {:.1}",
        stats.steps.mean(),
        stats.steps.min().unwrap_or(0.0),
        stats.steps.max().unwrap_or(0.0),
        stats.latency.mean(),
        stats.latency.quantile(0.99).unwrap_or(0.0),
    );
    println!(
        "messages/run: mean {:.0}   violations: agreement {}  unanimity {}  undecided {}  non-quiescent {}",
        stats.messages.mean(),
        stats.agreement_violations,
        stats.unanimity_violations,
        stats.undecided,
        stats.non_quiescent,
    );
    let mut trace_ok = true;
    if flags.contains_key("trace") {
        let traced = traced_batch_run(&batch, 0);
        let report = dex::obs::check(&traced.trace);
        let events: usize = traced.trace.processes.iter().map(|p| p.events.len()).sum();
        if let Err(e) = std::fs::create_dir_all("results") {
            eprintln!("cannot create results/: {e}");
            return ExitCode::FAILURE;
        }
        let path = format!("results/trace_{seed0}.json");
        if let Err(e) = std::fs::write(&path, dex::obs::json::render(&traced.trace, &report)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "trace: run 0 re-executed with recording — {events} events, {} invariant checks, {} violations → {path}",
            report.total_checks(),
            report.violations.len(),
        );
        for v in &report.violations {
            eprintln!(
                "trace violation [{}] p{}: {}",
                v.invariant, v.process, v.detail
            );
        }
        trace_ok = report.is_ok();
    }
    if stats.clean() && trace_ok {
        println!("all runs clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("VIOLATIONS DETECTED");
        ExitCode::FAILURE
    }
}
