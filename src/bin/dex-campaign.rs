//! `dex-campaign` — the million-client testbed sweep driver.
//!
//! ```text
//! cargo run --release --bin dex-campaign -- --config smoke --jobs 8
//! ```
//!
//! Runs a [`CampaignSpec`] — a grid of seeds × contention phases ×
//! adversaries × chaos schedules × legal `(n, t)` pairs — on a pool of
//! worker threads and writes the byte-stable artifact
//! `results/campaign_<config>.json` plus (optionally) a markdown summary
//! table. The artifact is identical for any `--jobs` value; CI pins this
//! by running the smoke campaign twice and `cmp`-ing the bytes.
//!
//! Flags (all optional):
//!
//! | flag | meaning | default |
//! |---|---|---|
//! | `--config <name>` | campaign preset: `smoke`, `standard` | `smoke` |
//! | `--seeds <n>` | override runs per grid cell | preset value |
//! | `--seed0 <s>` | override the base seed | preset value |
//! | `--jobs <n>` | worker threads | available parallelism |
//! | `--out <path>` | artifact path | `results/campaign_<config>.json` |
//! | `--summary-md <path>` | also write the markdown rate table here | off |
//! | `--assert-monotone-f` | fail unless fast rates are monotone non-increasing in `f` *and* strictly adaptive (higher at some `f < t` than at `f = t`) in ≥ 1 group | off |
//! | `--replay <cell> <run>` | print the equivalent single-run `dex-sim` flags for one grid point and exit | off |
//!
//! Exit codes: `0` success, `1` campaign failure (safety violation or a
//! failed `--assert-monotone-f` audit), `2` bad flags.

use dex::harness::campaign::{run_campaign, CampaignSpec};
use std::process::ExitCode;

struct Options {
    spec: CampaignSpec,
    jobs: usize,
    out: Option<String>,
    summary_md: Option<String>,
    assert_monotone: bool,
    replay: Option<(usize, usize)>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut config = "smoke".to_string();
    let mut seeds: Option<usize> = None;
    let mut seed0: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut out = None;
    let mut summary_md = None;
    let mut assert_monotone = false;
    let mut replay = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs {what}"))
        };
        match flag.as_str() {
            "--config" => config = value("a preset name")?.clone(),
            "--seeds" => {
                seeds = Some(
                    value("a count")?
                        .parse()
                        .map_err(|_| format!("bad count in {flag}"))?,
                )
            }
            "--seed0" => {
                seed0 = Some(
                    value("a seed")?
                        .parse()
                        .map_err(|_| format!("bad seed in {flag}"))?,
                )
            }
            "--jobs" => {
                jobs = Some(
                    value("a thread count")?
                        .parse()
                        .map_err(|_| format!("bad thread count in {flag}"))?,
                )
            }
            "--out" => out = Some(value("a path")?.clone()),
            "--summary-md" => summary_md = Some(value("a path")?.clone()),
            "--assert-monotone-f" => assert_monotone = true,
            "--replay" => {
                let cell = value("a cell index")?
                    .parse()
                    .map_err(|_| "bad cell index in --replay".to_string())?;
                let run = it
                    .next()
                    .ok_or("--replay needs <cell> <run>")?
                    .parse()
                    .map_err(|_| "bad run index in --replay".to_string())?;
                replay = Some((cell, run));
            }
            _ => return Err(format!("unknown flag {flag:?}")),
        }
    }
    let mut spec = CampaignSpec::by_name(&config)
        .ok_or_else(|| format!("unknown campaign config {config:?} (try smoke, standard)"))?;
    if let Some(s) = seeds {
        spec.seeds = s;
    }
    if let Some(s) = seed0 {
        spec.seed0 = s;
    }
    let jobs = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    Ok(Options {
        spec,
        jobs,
        out,
        summary_md,
        assert_monotone,
        replay,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help") {
        println!("see the module docs at the top of src/bin/dex-campaign.rs for the flag table");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = opts.spec.validate() {
        eprintln!("invalid campaign: {e}");
        return ExitCode::from(2);
    }
    if let Some((cell_idx, run)) = opts.replay {
        let cells = opts.spec.cells();
        let Some(cell) = cells.get(cell_idx) else {
            eprintln!(
                "cell {cell_idx} out of range (grid has {} cells)",
                cells.len()
            );
            return ExitCode::from(2);
        };
        if run >= opts.spec.seeds {
            eprintln!(
                "run {run} out of range (campaign has {} seeds)",
                opts.spec.seeds
            );
            return ExitCode::from(2);
        }
        let replay = opts.spec.runspec_for(cell, run);
        println!("dex-sim {}", replay.to_args().join(" "));
        return ExitCode::SUCCESS;
    }
    let grid = opts.spec.cells().len();
    println!(
        "campaign {} | {} cells × {} seeds = {} runs | {} jobs",
        opts.spec.name,
        grid,
        opts.spec.seeds,
        grid * opts.spec.seeds,
        opts.jobs,
    );
    let report = match run_campaign(&opts.spec, opts.jobs) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = opts
        .out
        .unwrap_or_else(|| format!("results/campaign_{}.json", opts.spec.name));
    if let Some(dir) = std::path::Path::new(&out)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&out, report.render_json()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    let markdown = report.summary_markdown();
    print!("{markdown}");
    if let Some(path) = &opts.summary_md {
        if let Err(e) = std::fs::write(path, &markdown) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("artifact: {out}");
    if report.agreement_violations() > 0 {
        eprintln!(
            "AGREEMENT VIOLATIONS: {} runs disagreed",
            report.agreement_violations()
        );
        return ExitCode::FAILURE;
    }
    let audit = report.check_f_monotonicity();
    println!(
        "f-monotonicity: {} violations, {} strictly adaptive groups ({} on canonical chaos)",
        audit.violations.len(),
        audit.strict,
        audit.strict_canonical,
    );
    if opts.assert_monotone {
        for v in &audit.violations {
            eprintln!("monotonicity violation: {v}");
        }
        if !audit.monotone() {
            eprintln!("FAIL: fast-decision rate rose with f");
            return ExitCode::FAILURE;
        }
        if audit.strict == 0 {
            eprintln!("FAIL: no group showed a strictly higher fast rate at f < t than at f = t");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
