//! Designing a **new** legal condition-sequence pair with the generic
//! framework — the workflow Theorem 3 enables: define, machine-verify
//! legality, then run Algorithm DEX with it.
//!
//! The pair built here is a *privileged-set* family: a whole set `M` of
//! values is privileged (say, every "commit-like" outcome of a contract),
//! and the score is how many proposals land in `M` **minus** how many land
//! outside. Thresholds mirror the frequency pair. `F` picks the largest
//! `M`-value in the view when `M` dominates, else the plain plurality.
//!
//! ```text
//! cargo run --release --example custom_pair
//! ```

use dex::conditions::{verify, ConditionFamily, FamilyPair};
use dex::core::{DecisionPath, DexActor, DexProcess};
use dex::prelude::*;
use dex::underlying::OracleConsensus;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Score = `min(#M(J) − #(V∖M)(J), margin within M)`; decide the top
/// `M`-value when it tops `t` occurrences, else the plurality value.
///
/// The `min` with the *within-M margin* is load-bearing: a first draft
/// scored only `inside − outside` and decided the largest `M`-value — the
/// exhaustive checker instantly produced an LA3 counterexample (two linkable
/// views whose largest M-values differ). Deciding the most *frequent*
/// M-value and requiring its margin over the runner-up M-value to clear the
/// same threshold repairs it, mirroring how Theorem 1 uses the frequency
/// margin.
#[derive(Clone, Debug)]
struct PrivilegedSet {
    m: BTreeSet<u64>,
    t: usize,
}

impl PrivilegedSet {
    /// Most frequent M-value (largest on ties) with its count, plus the
    /// runner-up M-value count.
    fn top_m(&self, view: &dex::types::View<u64>) -> Option<(u64, usize, usize)> {
        let mut counts: Vec<(u64, usize)> = self
            .m
            .iter()
            .map(|v| (*v, view.count_of(v)))
            .filter(|(_, c)| *c > 0)
            .collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));
        match counts.as_slice() {
            [] => None,
            [(v, c)] => Some((*v, *c, 0)),
            [(v, c), (_, c2), ..] => Some((*v, *c, *c2)),
        }
    }
}

impl ConditionFamily<u64> for PrivilegedSet {
    fn name(&self) -> &'static str {
        "prv-set"
    }

    fn score_input(&self, input: &dex::types::InputVector<u64>) -> usize {
        self.score_view(&input.to_view())
    }

    fn score_view(&self, view: &dex::types::View<u64>) -> usize {
        let inside = view
            .iter_known()
            .filter(|(_, v)| self.m.contains(v))
            .count();
        let outside = view.len_non_default() - inside;
        let dominance = inside.saturating_sub(outside);
        let margin_in_m = self.top_m(view).map_or(0, |(_, c, c2)| c - c2);
        dominance.min(margin_in_m)
    }

    fn decide(&self, view: &dex::types::View<u64>) -> Option<u64> {
        match self.top_m(view) {
            Some((v, c, _)) if c > self.t => Some(v),
            _ => view.first().copied(),
        }
    }
}

fn main() {
    let cfg = SystemConfig::new(7, 1).expect("7 > 6t");
    let t = cfg.t();
    let family = PrivilegedSet {
        m: [10, 11, 12].into_iter().collect(),
        t,
    };

    // Thresholds chosen like the frequency pair: each Byzantine process can
    // swing the inside-vs-outside score by 2.
    let pair = Arc::new(FamilyPair::new(cfg, family, 4 * t, 2, 2 * t, 2));

    // Step 1: machine-verify legality before trusting the pair.
    print!("verifying legality on n = 7, |V| = 3 (one M-value, two outside)… ");
    let report = verify::check_legality(pair.as_ref(), 7, &[0u64, 1, 10])
        .expect("the privileged-set pair must satisfy LT1/LT2/LA3/LA4/LU5");
    println!(
        "legal ({} LA3 + {} LA4 implications checked)",
        report.la3_checked, report.la4_checked
    );
    print!("verifying on |V| = 4 (two M-values — F must break ties inside M)… ");
    let report = verify::check_legality(pair.as_ref(), 7, &[0u64, 10, 11, 1])
        .expect("still legal with multiple privileged values");
    println!("legal ({} LU5 checks)", report.lu5_checked);

    // Step 2: run Algorithm DEX instantiated with the new pair.
    println!("\nrunning DEX with the custom pair:");
    for (label, input) in [
        // score = min(6−1, 6) = 5 > 4t ⇒ one-step.
        (
            "M dominant   (10,10,10,10,10,10,0)",
            vec![10u64, 10, 10, 10, 10, 10, 0],
        ),
        // score = min(5−2, 5) = 3 ∈ (2t, 4t] ⇒ two-step.
        (
            "M moderate   (10,10,10,10,10,0,1)",
            vec![10u64, 10, 10, 10, 10, 0, 1],
        ),
        // within-M margin 3−2 = 1 ⇒ outside both conditions ⇒ fallback.
        (
            "M split      (10,11,10,12,11,0,10)",
            vec![10u64, 11, 10, 12, 11, 0, 10],
        ),
    ] {
        let actors: Vec<_> = input
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let me = ProcessId::new(i);
                DexActor::new(
                    DexProcess::new(
                        cfg,
                        me,
                        Arc::clone(&pair),
                        OracleConsensus::new(cfg, me, ProcessId::new(0)),
                    ),
                    *v,
                )
            })
            .collect();
        let mut sim = Simulation::builder(actors)
            .seed(9)
            .delay(DelayModel::Uniform { min: 1, max: 10 })
            .build();
        assert!(sim.run(1_000_000).quiescent);
        let d0 = sim
            .actor(ProcessId::new(0))
            .decision()
            .expect("decided")
            .clone();
        for a in sim.actors() {
            assert_eq!(a.decision().unwrap().value, d0.value, "agreement");
        }
        println!(
            "  {label}: decided {} via {} ({} step(s))",
            d0.value,
            d0.path.label(),
            d0.depth.get()
        );
        let _ = DecisionPath::OneStep; // referenced for doc purposes
    }
    println!(
        "\nNo new proofs were written for this pair — the exhaustive checker did the\n\
         work Theorem 1/2 did by hand, which is exactly what the generic framework\n\
         (Theorem 3) is for."
    );
}
