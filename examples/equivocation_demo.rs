//! Fig. 2 live: a Byzantine sender equivocates, Identical Broadcast makes
//! every correct process deliver the same message anyway — and the same
//! attack *does* split the plain point-to-point views, which is exactly
//! why DEX runs its one-step channel at the stricter `P1` threshold.
//!
//! ```text
//! cargo run --example equivocation_demo
//! ```

use dex::broadcast::{Action, IdbMessage, IdenticalBroadcast};
use dex::prelude::*;

type Msg = IdbMessage<ProcessId, u64>;

enum Node {
    Correct {
        machine: IdenticalBroadcast<ProcessId, u64>,
        p_view: Vec<(ProcessId, u64)>, // what plain sends would have shown
        id_view: Vec<(ProcessId, u64)>, // what IDB actually delivers
    },
    Equivocator,
}

impl Actor for Node {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        let me = ctx.me();
        match self {
            Node::Correct { .. } => ctx.broadcast(IdenticalBroadcast::id_send(me, 100)),
            Node::Equivocator => {
                // p4 tells half the system "7" and the other half "9".
                for i in 0..ctx.n() {
                    let value = if i < ctx.n() / 2 { 7 } else { 9 };
                    ctx.send(ProcessId::new(i), IdbMessage::Init { key: me, value });
                }
            }
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: &Msg, ctx: &mut Context<'_, Msg>) {
        if let Node::Correct {
            machine,
            p_view,
            id_view,
        } = self
        {
            if let IdbMessage::Init { key, value } = msg {
                if *key == from {
                    p_view.push((from, *value)); // the raw, splittable view
                }
            }
            for action in machine.on_message(from, msg) {
                match action {
                    Action::Broadcast(m) => ctx.broadcast(m),
                    Action::Deliver { key, value } => id_view.push((key, value)),
                }
            }
        }
    }
}

fn main() {
    println!("Identical Broadcast vs an equivocating sender (n = 5, t = 1)\n");
    let cfg = SystemConfig::new(5, 1).expect("5 > 4t");
    let mut nodes: Vec<Node> = (0..4)
        .map(|_| Node::Correct {
            machine: IdenticalBroadcast::new(cfg),
            p_view: Vec::new(),
            id_view: Vec::new(),
        })
        .collect();
    nodes.push(Node::Equivocator);

    let mut sim = Simulation::builder(nodes)
        .seed(3)
        .delay(DelayModel::Uniform { min: 1, max: 15 })
        .build();
    assert!(sim.run(1_000_000).quiescent);

    for i in 0..4 {
        if let Node::Correct {
            p_view, id_view, ..
        } = sim.actor(ProcessId::new(i))
        {
            let raw: Vec<String> = p_view
                .iter()
                .filter(|(from, _)| from.index() == 4)
                .map(|(_, v)| v.to_string())
                .collect();
            let idb: Vec<String> = id_view
                .iter()
                .filter(|(from, _)| from.index() == 4)
                .map(|(_, v)| v.to_string())
                .collect();
            println!(
                "p{i}: raw init from p4 = [{}]   Id-Received from p4 = [{}]",
                raw.join(", "),
                idb.join(", ")
            );
        }
    }
    println!(
        "\nThe raw inits differ across receivers (7 vs 9); the Id-Receive column is\n\
         identical everywhere (or empty) — the agreement property of Theorem 4."
    );
}
