//! A replicated key-value store on multi-slot DEX: seven replicas, one of
//! them Byzantine, committing a shared log and converging on identical
//! state — the paper's §1.1 scenario end to end.
//!
//! ```text
//! cargo run --example kv_cluster
//! ```

use dex::replication::{run_cluster, ClusterOptions, Command};
use dex::types::SystemConfig;

fn main() {
    let config = SystemConfig::new(7, 1).expect("7 > 6t");

    // The client broadcast its requests to all replicas; replicas 5 and 6
    // saw the tail in a different order (late delivery), and replica 6 is
    // outright Byzantine.
    let canonical = vec![
        Command::put(1, 100),
        Command::put(2, 200),
        Command::add(1, 11),
        Command::delete(2),
        Command::add(3, 7),
    ];
    let mut pending = vec![canonical.clone(); 7];
    pending[5].swap(3, 4);
    let outcome = run_cluster(ClusterOptions {
        config,
        pending,
        target_slots: 5,
        byzantine: vec![6],
        seed: 2010,
    });

    assert!(outcome.converged(), "correct replicas must converge");
    println!("replicated KV cluster: n = 7, t = 1, replica p6 Byzantine\n");
    let log = outcome.logs[0].clone().expect("replica 0 is correct");
    for (slot, cmd) in log.iter().enumerate() {
        let path = outcome.paths[0]
            .iter()
            .find(|p| p.slot == slot as u64)
            .map(|p| p.path.label())
            .unwrap_or("?");
        println!("slot {slot}: {cmd:<12} committed via {path}");
    }
    println!(
        "\nall correct replicas converged (digest {:#018x}), {:.0}% of slot decisions on the one-step path",
        outcome.digests[0].unwrap(),
        100.0 * outcome.one_step_fraction()
    );
}
