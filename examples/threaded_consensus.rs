//! DEX under real OS concurrency: one thread per process, jittered channel
//! delivery — no simulator involved.
//!
//! ```text
//! cargo run --example threaded_consensus
//! ```

use dex::conditions::FrequencyPair;
use dex::core::{DexActor, DexProcess};
use dex::prelude::*;
use dex::threadnet::{run_network, NetworkOptions};
use dex::underlying::OracleConsensus;
use std::time::Duration;

fn build(
    cfg: SystemConfig,
    proposals: &[u64],
) -> Vec<DexActor<u64, FrequencyPair, OracleConsensus<u64>>> {
    proposals
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let me = ProcessId::new(i);
            DexActor::new(
                DexProcess::new(
                    cfg,
                    me,
                    FrequencyPair::new(cfg).expect("n > 6t"),
                    OracleConsensus::new(cfg, me, ProcessId::new(0)),
                ),
                *v,
            )
        })
        .collect()
}

fn main() {
    let cfg = SystemConfig::new(7, 1).expect("7 > 3t");
    println!("DEX over 7 OS threads, 20-400us injected per-message delay\n");
    for (label, proposals) in [
        ("unanimous", vec![5u64; 7]),
        ("5-vs-2 split", vec![5, 5, 5, 5, 5, 9, 9]),
        ("4-vs-3 split", vec![5, 5, 5, 5, 9, 9, 9]),
    ] {
        let result = run_network(
            build(cfg, &proposals),
            NetworkOptions {
                seed: 11,
                delay_us: (20, 400),
                timeout: Duration::from_secs(20),
            },
        );
        assert!(result.quiescent, "network must drain");
        let first = result.actors[0].decision().expect("decided").value;
        print!("{label:>14}: ");
        for a in &result.actors {
            let d = a.decision().expect("every thread decides");
            assert_eq!(d.value, first, "agreement under real concurrency");
        }
        let by_path: Vec<String> = result
            .actors
            .iter()
            .map(|a| {
                let d = a.decision().expect("decided");
                format!("{}@{}", d.path.label(), d.depth.get())
            })
            .collect();
        println!("decided {first} [{}]", by_path.join(" "));
    }
    println!("\n(path@depth per thread; depths match the simulator's step accounting)");
}
