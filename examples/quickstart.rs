//! Quickstart: DEX deciding in one step on a unanimous input, then the
//! full path ladder (one-step / two-step / fallback) as agreement degrades.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dex::prelude::*;

fn run_once(label: &str, input: InputVector<u64>) {
    let config = SystemConfig::new(7, 1).expect("7 > 3t");
    let result = run_instance(&RunInstance {
        faults: FaultSchedule::none(),
        config,
        algo: Algo::DexFreq,
        underlying: UnderlyingKind::Oracle,
        strategy: ByzantineStrategy::Silent,
        fault_plan: FaultPlan::none(),
        input: input.clone(),
        delay: DelayModel::Uniform { min: 1, max: 10 },
        seed: 2010,
        max_events: 1_000_000,
        aggregate: false,
    });
    assert!(result.agreement_ok(), "agreement must hold");
    assert!(result.all_decided(), "termination must hold");
    println!("{label}: input {input}");
    for (i, outcome) in result.outcomes.iter().enumerate() {
        if let dex::harness::runner::Outcome::Decided(r) = outcome {
            println!(
                "  p{i} decided {} via {:>8} after {} step(s)",
                r.value, r.path, r.steps
            );
        }
    }
    println!();
}

fn main() {
    println!("DEX (frequency pair), n = 7, t = 1, oracle fallback\n");

    // All processes propose the same value: margin 7 > 4t = 4 ⇒ one step.
    run_once("unanimous", InputVector::unanimous(7, 42));

    // 5-vs-2 split: margin 3 ∈ (2t, 4t] ⇒ the doubly-expedited two-step
    // channel — the paper's new capability.
    run_once(
        "moderate split",
        InputVector::new(vec![42, 42, 42, 42, 42, 7, 7]),
    );

    // 4-vs-3 split: margin 1 ≤ 2t ⇒ underlying consensus (4 steps total).
    run_once(
        "heavy split",
        InputVector::new(vec![42, 42, 42, 42, 7, 7, 7]),
    );
}
