//! State-machine replication: the paper's motivating scenario (§1.1).
//!
//! Replicated servers must agree on the processing order of client update
//! requests. Each consensus instance decides "which request id commits to
//! the next log slot". When a client broadcast reaches all replicas without
//! contention — the common case — every replica proposes the same request
//! and DEX commits the slot in a *single communication step*.
//!
//! This example replays a 40-slot log under Zipf-skewed contention, with
//! one Byzantine replica, and reports the committed log plus the decision
//! path per slot.
//!
//! ```text
//! cargo run --example smr_replication
//! ```

use dex::metrics::Counter;
use dex::prelude::*;
use dex::workloads::{InputGenerator, ZipfRequests};
use rand::rngs::StdRng;

const SLOTS: usize = 40;

fn main() {
    let config = SystemConfig::new(8, 1).expect("8 > 3t");
    // Request ids drawn from a Zipf(s = 2) distribution over 12 in-flight
    // requests: usually one hot request dominates.
    let contention = ZipfRequests { domain: 12, s: 2.0 };
    let mut rng = StdRng::seed_from_u64(7);

    let mut log: Vec<u64> = Vec::new();
    let mut paths: Counter<&'static str> = Counter::new();
    let mut total_steps = 0u64;

    println!("replicated log, n = 8 replicas, t = 1 (replica p7 Byzantine)\n");
    for slot in 0..SLOTS {
        // Each replica proposes the next request id it observed.
        let proposals = contention.generate(config.n(), &mut rng);
        let result = run_instance(&RunInstance {
            faults: FaultSchedule::none(),
            config,
            algo: Algo::DexFreq,
            underlying: UnderlyingKind::Oracle,
            strategy: ByzantineStrategy::Equivocate { values: vec![0, 1] },
            fault_plan: FaultPlan::last_k(config, 1),
            input: proposals.clone(),
            delay: DelayModel::Uniform { min: 1, max: 10 },
            seed: 5000 + slot as u64,
            max_events: 5_000_000,
            aggregate: false,
        });
        assert!(result.agreement_ok(), "replicas diverged at slot {slot}");
        assert!(result.all_decided(), "slot {slot} never committed");

        let decision = result.decided().next().expect("some replica decided");
        log.push(decision.value);
        for r in result.decided() {
            paths.add(r.path);
            total_steps += u64::from(r.steps);
        }
        println!(
            "slot {slot:>2}: proposals {proposals} -> commit request {} via {}",
            decision.value, decision.path
        );
    }

    let decisions = paths.total();
    println!("\ncommitted log: {log:?}");
    println!(
        "decision paths: 1-step {:.0}%, 2-step {:.0}%, fallback {:.0}%",
        100.0 * paths.fraction(&"1-step"),
        100.0 * paths.fraction(&"2-step"),
        100.0 * paths.fraction(&"fallback"),
    );
    println!(
        "mean steps per replica decision: {:.2} (two-step lower bound is 2.0 without expedition)",
        total_steps as f64 / decisions as f64
    );
}
