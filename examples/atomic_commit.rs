//! Atomic commitment with the privileged-value pair (§3.4).
//!
//! In non-blocking atomic commitment most transactions end with every
//! participant voting *Commit*; the paper privileges that value (`m`) so
//! the common case decides in one step even though Commit's margin over
//! Abort may be modest. This example runs a mix of transaction profiles
//! and contrasts the privileged pair against the frequency pair on the
//! exact same votes.
//!
//! ```text
//! cargo run --example atomic_commit
//! ```

use dex::prelude::*;
use dex::workloads::{BernoulliMix, InputGenerator};
use rand::rngs::StdRng;

const COMMIT: u64 = 1;
const ABORT: u64 = 0;

fn votes_to_string(input: &InputVector<u64>) -> String {
    input
        .as_slice()
        .iter()
        .map(|v| if *v == COMMIT { 'C' } else { 'A' })
        .collect()
}

fn decide(algo: Algo, input: &InputVector<u64>, seed: u64) -> (u64, &'static str, u32) {
    let config = SystemConfig::new(13, 2).expect("13 > 3t");
    let result = run_instance(&RunInstance {
        faults: FaultSchedule::none(),
        config,
        algo,
        underlying: UnderlyingKind::Oracle,
        strategy: ByzantineStrategy::Silent,
        fault_plan: FaultPlan::last_k(config, 1), // one crashed participant
        input: input.clone(),
        delay: DelayModel::Uniform { min: 1, max: 10 },
        seed,
        max_events: 5_000_000,
        aggregate: false,
    });
    assert!(result.agreement_ok() && result.all_decided());
    let slowest = result
        .decided()
        .max_by_key(|r| r.steps)
        .expect("decisions exist");
    (slowest.value, slowest.path, slowest.steps)
}

fn main() {
    println!("atomic commitment, n = 13 participants, t = 2, privileged value m = Commit\n");
    let mut rng = StdRng::seed_from_u64(42);
    let profiles = [
        ("healthy (P[commit] = 0.95)", 0.95),
        ("flaky   (P[commit] = 0.80)", 0.80),
        ("broken  (P[commit] = 0.40)", 0.40),
    ];
    for (label, p) in profiles {
        println!("-- {label}");
        let workload = BernoulliMix {
            p,
            a: COMMIT,
            b: ABORT,
        };
        for txn in 0..6 {
            let votes = workload.generate(13, &mut rng);
            let seed = 900 + txn;
            let (prv_v, prv_path, prv_steps) = decide(Algo::DexPrv { m: COMMIT }, &votes, seed);
            let (frq_v, frq_path, frq_steps) = decide(Algo::DexFreq, &votes, seed);
            // Note: the two instantiations are *different algorithms*; the
            // privileged pair may commit a transaction the frequency pair
            // aborts (F_prv prefers m whenever #m > t). Agreement holds
            // within each run, not across instantiations.
            println!(
                "  votes {} -> prv: {} via {prv_path} ({prv_steps} steps)   freq: {} via {frq_path} ({frq_steps} steps)",
                votes_to_string(&votes),
                if prv_v == COMMIT { "COMMIT" } else { "ABORT " },
                if frq_v == COMMIT { "COMMIT" } else { "ABORT " },
            );
        }
    }
    println!(
        "\nThe privileged pair expedites commit-heavy vote sets the frequency pair\n\
         cannot (margin too small), at the price of never expediting Abort — the\n\
         complementarity the paper describes in §1.2.\n\
         (Note: this is Byzantine *consensus* on the votes — F_prv prefers Commit\n\
         whenever more than t participants proposed it, which is the paper's\n\
         definition, not classical atomic-commitment validity.)"
    );
}
