#!/usr/bin/env bash
# Crash-recovery acceptance matrix: restart-with-amnesia schedules, the
# catch-up protocol, and resend-layer liveness, gated end to end.
#
# Three legs:
#   1. The release-mode recovery suite (tests/recovery_matrix.rs): f = t
#      Byzantine clusters with CrashMode::Restart windows re-derive
#      byte-identical committed prefixes through snapshot + WAL + catch-up
#      (checked slot-by-slot by the trace checker's recovered-prefix
#      invariant), and sustained-drop schedules that starve plain runs
#      terminate under the dex-core resend layer.
#   2. CLI surface: `--chaos crash-restart:<down>:<up>` parses, runs the
#      batch + checker across seeds, and renders a byte-stable artifact.
#      (The window sits after decision time: one-shot consensus has no
#      retransmission, so a mid-protocol amnesia crash leaves the victim
#      undecided by design — recovery liveness lives in the replication
#      layer, which is what leg 1 exercises.)
#   3. Fault-free pin: the seed-31 chaos-free trace artifact must render
#      byte-identically across re-executions — the recovery layer is
#      strictly additive and must not perturb existing schedules.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "recovery suite: restart schedules x seeds through the invariant checker"
cargo test --release -q --test recovery_matrix

echo "recovery CLI: crash-restart schedule across seeds"
BASE=(--n 7 --t 1 --f 1 --algo dex-freq --workload bernoulli:0.8
      --adversary equivocate --runs 3 --trace)
for seed in 0 1 2 3; do
  cargo run --release -q --bin dex-sim -- \
    "${BASE[@]}" --chaos crash-restart:200:300 --seed "$seed" > /dev/null
done
echo "recovery CLI: 4 seeds clean"

echo "recovery determinism: crash-restart:200:300 seed 31 twice, byte-identical artifact"
rm -f results/trace_chaos_crash-restart_31.json \
      results/trace_chaos_crash-restart_31.first.json
cargo run --release -q --bin dex-sim -- \
  "${BASE[@]}" --chaos crash-restart:200:300 --seed 31 > /dev/null
mv results/trace_chaos_crash-restart_31.json \
   results/trace_chaos_crash-restart_31.first.json
cargo run --release -q --bin dex-sim -- \
  "${BASE[@]}" --chaos crash-restart:200:300 --seed 31 > /dev/null
cmp results/trace_chaos_crash-restart_31.json \
    results/trace_chaos_crash-restart_31.first.json

echo "fault-free pin: chaos-free seed 31 twice, byte-identical artifact"
TRACE_ARGS=(--n 7 --t 1 --algo dex-freq --workload bernoulli:0.8 --f 1
            --adversary equivocate --runs 3 --seed 31 --trace)
rm -f results/trace_31.json results/trace_31.first.json
cargo run --release -q --bin dex-sim -- "${TRACE_ARGS[@]}" > /dev/null
mv results/trace_31.json results/trace_31.first.json
cargo run --release -q --bin dex-sim -- "${TRACE_ARGS[@]}" > /dev/null
cmp results/trace_31.json results/trace_31.first.json

rm -f results/trace_31.json results/trace_31.first.json \
      results/trace_chaos_crash-restart_*.json

echo "recovery matrix OK"
