#!/usr/bin/env bash
# Chaos acceptance matrix: every canonical chaos schedule (drop-heavy,
# dup-heavy, partition+heal, crash+recover) composed with a full-strength
# Byzantine adversary (f = t), across 8 seeds. Each invocation runs the
# batch, re-executes run 0 with event recording, and replays it through the
# structured invariant checker — dex-sim exits nonzero on any safety or
# termination-after-heal violation, which fails this script.
#
# A final cmp-gated pass pins byte-determinism of a chaos trace artifact:
# the same (spec, seed) must render the identical file twice.
set -euo pipefail
cd "$(dirname "$0")/.."

SCHEDULES=(drop:0.4 dup:0.35 partition:5:120 crash:3:100)
SEEDS=(0 1 2 3 4 5 6 7)

BASE=(--n 7 --t 1 --f 1 --algo dex-freq --workload bernoulli:0.8
      --adversary equivocate --runs 3 --trace)

for chaos in "${SCHEDULES[@]}"; do
  for seed in "${SEEDS[@]}"; do
    cargo run --release -q --bin dex-sim -- \
      "${BASE[@]}" --chaos "$chaos" --seed "$seed" > /dev/null
  done
  echo "chaos $chaos: ${#SEEDS[@]} seeds clean"
done

echo "chaos determinism: partition:5:120 seed 31 twice, byte-identical artifact"
rm -f results/trace_chaos_partition_31.json results/trace_chaos_partition_31.first.json
cargo run --release -q --bin dex-sim -- \
  "${BASE[@]}" --chaos partition:5:120 --seed 31 > /dev/null
mv results/trace_chaos_partition_31.json results/trace_chaos_partition_31.first.json
cargo run --release -q --bin dex-sim -- \
  "${BASE[@]}" --chaos partition:5:120 --seed 31 > /dev/null
cmp results/trace_chaos_partition_31.json results/trace_chaos_partition_31.first.json

rm -f results/trace_chaos_*.json

echo "chaos matrix OK"
