#!/usr/bin/env bash
# Regenerates BENCH_broadcast.json at the repo root: wire cost of the IDB
# echo flood with the aggregation layer off vs on (sent messages and bytes
# per decision at n = 7 / 13 / 31 / 127 — see DESIGN.md, "Echo
# aggregation"). Pass an argument to write elsewhere.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p dex-bench --bin bench_broadcast -- "${1:-BENCH_broadcast.json}"
