#!/usr/bin/env bash
# Regenerates BENCH_pipeline.json at the repo root: committed-values
# throughput of the pipelined replication engine at windows 1 / 8 / 32
# (see DESIGN.md, "Pipelined slots"). Pass an argument to write elsewhere.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p dex-bench --bin bench_pipeline -- "${1:-BENCH_pipeline.json}"
