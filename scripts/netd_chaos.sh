#!/usr/bin/env bash
# netd chaos: fault injection on real TCP links, end to end on localhost.
#
# Four proofs, mirroring tests/netd_cluster.rs at CI scale:
#   1. every canonical ChaosSpec::MATRIX schedule (drop, dup, partition,
#      crash) decides on a 7-process f=1 cluster whose sockets are
#      actively sabotaged by the chaos layer;
#   2. the per-link fault trace is seed-reproducible: the same schedule
#      under the same seed in two fresh directories emits byte-identical
#      results/netd_chaos_42.json artifacts;
#   3. the divergent-state kill -9 converges: per-process pending
#      streams, survivor progress proven while the victim is down, one
#      digest at the full prefix after FileWal replay + t+1 catch-up;
#   4. the campaign cell records wall-clock fast-decision rates next to
#      the simnet rates for the same cells.
# The harness asserts agreement, convergence and restart counts itself
# and exits non-zero otherwise; this script checks the artifacts.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q --bin dex-netd
NETD="$PWD/target/release/dex-netd"

rm -f BENCH_netd.json results/netd_chaos_42.json results/campaign_netd_smoke.json

echo "== chaos cells: 4 MATRIX schedules on live sockets (n=7 t=1 f=1)"
for chaos in drop:0.4 dup:0.35 partition:5:120 crash:3:100; do
  "$NETD" --cluster --n 7 --t 1 --f 1 --chaos "$chaos" \
    --phase cells --runs 1 --seed 42 --timeout-secs 120
done

echo "== fault-trace reproducibility: same seed, two dirs, cmp"
trace_a="$(mktemp -d)"
trace_b="$(mktemp -d)"
trap 'rm -rf "$trace_a" "$trace_b"' EXIT
for dir in "$trace_a" "$trace_b"; do
  (cd "$dir" && "$NETD" --cluster --n 7 --t 1 --f 1 --chaos drop:0.4 \
    --phase cells --runs 2 --seed 42 --timeout-secs 120)
done
cmp "$trace_a/results/netd_chaos_42.json" "$trace_b/results/netd_chaos_42.json"
# Keep one copy where the CI artifact globs collect it.
mkdir -p results
cp "$trace_a/results/netd_chaos_42.json" results/netd_chaos_42.json

echo "== divergent kill -9: survivor progress, then WAL replay + catch-up"
"$NETD" --cluster --n 7 --t 1 --phase kill9 --kill 2:divergent \
  --slots 8 --window 4 --seed 99 --timeout-secs 120
grep -q '"divergent":true' BENCH_netd.json
grep -q '"converged":true' BENCH_netd.json
grep -q '"survivor_floor":' BENCH_netd.json

echo "== campaign cell: wall-clock fast-decision rates vs simnet"
"$NETD" --campaign smoke:0 --runs 1 --timeout-secs 120
grep -q '"netd":{"fast":' results/campaign_netd_smoke.json
grep -q '"simnet":{"fast":' results/campaign_netd_smoke.json

for artifact in results/netd_chaos_42.json results/campaign_netd_smoke.json; do
  [ -f "$artifact" ] || { echo "missing artifact $artifact" >&2; exit 1; }
done

echo "netd chaos OK: MATRIX decided, trace reproducible, divergent kill converged"
