#!/usr/bin/env bash
# Regenerates BENCH_view_tally.json at the repo root: naive O(n) recount vs
# the O(1) incremental view tally on the predicate hot path (see DESIGN.md,
# "Performance"). Pass an argument to write elsewhere.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p dex-bench --bin bench_view_tally -- "${1:-BENCH_view_tally.json}"
