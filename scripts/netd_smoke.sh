#!/usr/bin/env bash
# netd smoke: the process-level runtime, end to end on localhost TCP.
#
# A 5-process cluster must (a) decide a canonical fault-free MATRIX cell
# with agreement across all child processes, and (b) survive a literal
# kill -9 + respawn of one replica, converging through FileWal replay and
# t+1 catch-up. The harness asserts agreement, convergence and the
# restart count itself and exits non-zero otherwise; this script checks
# the artifacts it leaves behind (BENCH_netd.json, results/netd_31.json).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q --bin dex-netd

rm -f BENCH_netd.json results/netd_31.json

./target/release/dex-netd --cluster \
  --n 5 --t 0 --workload bernoulli:0.8 --runs 2 --seed 31 \
  --slots 8 --window 4 --stats --timeout-secs 120

for artifact in BENCH_netd.json results/netd_31.json; do
  [ -f "$artifact" ] || { echo "missing artifact $artifact" >&2; exit 1; }
done
grep -q '"cell":"kill9"' BENCH_netd.json
grep -q '"converged":true' BENCH_netd.json
grep -q '"restarts":1' BENCH_netd.json

echo "netd smoke OK: cells decided, kill -9 + respawn converged"
