#!/usr/bin/env bash
# Bench-regression gate: reruns the committed microbenchmarks and compares
# fresh speedups against the committed baselines. Fails if any system size
# regressed by more than 30% — generous enough for shared-runner noise,
# tight enough to catch a hot path going accidentally O(n) again.
#
# Gated benchmarks:
#   * BENCH_view_tally.json — O(1) incremental view tally vs naive recount
#     (read_speedup per n).
#   * BENCH_simnet.json — shared-payload delivery core vs the legacy
#     eager-clone engine (speedup per n), plus a hard zero on
#     fastpath_clones_per_multicast: Dest::All traffic must never clone.
#   * BENCH_pipeline.json — pipelined replication throughput, window 8 vs
#     the sequential window-1 chain (w8_speedup per n). Deterministic
#     virtual-time metric, so two hard checks ride on top of the
#     regression comparison: window 8 must beat window 1 by ≥ 2x at
#     n = 31, and clones_per_multicast must be exactly zero.
#   * BENCH_broadcast.json — echo aggregation wire cost, batched vs
#     unbatched sent messages per decision (msg_reduction per n). Also a
#     deterministic virtual-wire metric, with two hard checks: aggregation
#     must cut sent messages per decision by ≥ 3x at n = 31, and
#     clones_on_wire must be exactly zero (batches ride the slab path).
set -euo pipefail
cd "$(dirname "$0")/.."

# compare_speedups BASELINE FRESH FIELD: both files carry per-n result
# lines like {"n": 7, ..., "FIELD": 39.07, ...}; fail when fresh < 70% of
# baseline at any n.
compare_speedups() {
  local baseline=$1 fresh=$2 field=$3
  paste <(sed -n 's/.*"n": *\([0-9]*\),.*"'"$field"'": *\([0-9.]*\).*/\1 \2/p' "$baseline") \
        <(sed -n 's/.*"n": *\([0-9]*\),.*"'"$field"'": *\([0-9.]*\).*/\1 \2/p' "$fresh") \
  | awk -v field="$field" '
    NF < 4 || $1 != $3 {
      print "baseline and fresh run disagree on benched sizes" > "/dev/stderr"
      fail = 1
      exit 1
    }
    {
      printf "n=%-4d baseline %8.2fx   fresh %8.2fx   ratio %.2f\n", $1, $2, $4, $4 / $2
      if ($4 < 0.7 * $2) {
        printf "REGRESSION at n=%d: %s %.2fx < 70%% of baseline %.2fx\n", $1, field, $4, $2 > "/dev/stderr"
        fail = 1
      }
    }
    END { exit fail }
  '
}

require_baseline() {
  if [[ ! -f "$1" ]]; then
    echo "missing committed baseline $1" >&2
    exit 1
  fi
}

require_baseline BENCH_view_tally.json
require_baseline BENCH_simnet.json
require_baseline BENCH_pipeline.json
require_baseline BENCH_broadcast.json

FRESH_TALLY=$(mktemp -t bench_view_tally.XXXXXX)
FRESH_SIMNET=$(mktemp -t bench_simnet.XXXXXX)
FRESH_PIPELINE=$(mktemp -t bench_pipeline.XXXXXX)
FRESH_BROADCAST=$(mktemp -t bench_broadcast.XXXXXX)
trap 'rm -f "$FRESH_TALLY" "$FRESH_SIMNET" "$FRESH_PIPELINE" "$FRESH_BROADCAST"' EXIT

echo "-- view tally: naive vs incremental (read_speedup)"
./scripts/bench_view_tally.sh "$FRESH_TALLY" > /dev/null
compare_speedups BENCH_view_tally.json "$FRESH_TALLY" read_speedup

echo "-- simnet delivery core: legacy vs fast path (speedup)"
./scripts/bench_simnet.sh "$FRESH_SIMNET" > /dev/null
compare_speedups BENCH_simnet.json "$FRESH_SIMNET" speedup

# The zero-clone contract is exact, not statistical: any non-zero value
# means a multicast payload was copied by the network layer.
if sed -n 's/.*"fastpath_clones_per_multicast": *\([0-9.]*\).*/\1/p' "$FRESH_SIMNET" \
   | grep -qv '^0\(\.0*\)\?$'; then
  echo "zero-clone violation: fastpath_clones_per_multicast != 0" >&2
  exit 1
fi

echo "-- pipelined replication: window 8 vs sequential (w8_speedup)"
./scripts/bench_pipeline.sh "$FRESH_PIPELINE" > /dev/null
compare_speedups BENCH_pipeline.json "$FRESH_PIPELINE" w8_speedup

# The pipeline metric is virtual-time throughput — deterministic, so the
# headline claim gates hard: at n = 31, a window of 8 in-flight slots
# must at least double sequential committed-values throughput.
sed -n 's/.*"n": *31,.*"w8_speedup": *\([0-9.]*\).*/\1/p' "$FRESH_PIPELINE" \
  | awk '
    { found = 1
      if ($1 < 2.0) {
        printf "pipeline gate: w8_speedup %.2fx < 2x at n=31\n", $1 > "/dev/stderr"
        exit 1
      }
    }
    END { if (!found) { print "pipeline gate: no n=31 row" > "/dev/stderr"; exit 1 } }
  '

# Replication traffic must ride the slab fast path: zero payload clones.
if sed -n 's/.*"clones_per_multicast": *\([0-9.]*\).*/\1/p' "$FRESH_PIPELINE" \
   | grep -qv '^0\(\.0*\)\?$'; then
  echo "zero-clone violation: pipeline clones_per_multicast != 0" >&2
  exit 1
fi

echo "-- echo aggregation: unbatched vs batched wire cost (msg_reduction)"
./scripts/bench_broadcast.sh "$FRESH_BROADCAST" > /dev/null
compare_speedups BENCH_broadcast.json "$FRESH_BROADCAST" msg_reduction

# Deterministic virtual-wire metric, so the headline claim gates hard: at
# n = 31 aggregation must cut sent messages per decision by at least 3x.
sed -n 's/.*"n": *31,.*"msg_reduction": *\([0-9.]*\).*/\1/p' "$FRESH_BROADCAST" \
  | awk '
    { found = 1
      if ($1 < 3.0) {
        printf "broadcast gate: msg_reduction %.2fx < 3x at n=31\n", $1 > "/dev/stderr"
        exit 1
      }
    }
    END { if (!found) { print "broadcast gate: no n=31 row" > "/dev/stderr"; exit 1 } }
  '

# Echo batches must stay on the zero-clone multicast path.
if sed -n 's/.*"clones_on_wire": *\([0-9.]*\).*/\1/p' "$FRESH_BROADCAST" \
   | grep -qv '^0\(\.0*\)\?$'; then
  echo "zero-clone violation: broadcast clones_on_wire != 0" >&2
  exit 1
fi

echo "bench gate OK"
