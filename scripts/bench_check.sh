#!/usr/bin/env bash
# Bench-regression gate: reruns the view-tally microbenchmark and compares
# the per-read speedup of the O(1) incremental tally against the committed
# baseline (BENCH_view_tally.json). Fails if any system size regressed by
# more than 30% — generous enough for shared-runner noise, tight enough to
# catch the hot path going accidentally O(n) again.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_view_tally.json
if [[ ! -f "$BASELINE" ]]; then
  echo "missing committed baseline $BASELINE" >&2
  exit 1
fi

FRESH=$(mktemp -t bench_view_tally.XXXXXX)
trap 'rm -f "$FRESH"' EXIT

./scripts/bench_view_tally.sh "$FRESH" > /dev/null

# Per-n result lines look like:
#   {"n": 7, ..., "read_speedup": 39.07, ...}
extract() {
  sed -n 's/.*"n": *\([0-9]*\),.*"read_speedup": *\([0-9.]*\),.*/\1 \2/p' "$1"
}

paste <(extract "$BASELINE") <(extract "$FRESH") | awk '
  NF < 4 || $1 != $3 {
    print "baseline and fresh run disagree on benched sizes" > "/dev/stderr"
    fail = 1
    exit 1
  }
  {
    printf "n=%-4d baseline %8.2fx   fresh %8.2fx   ratio %.2f\n", $1, $2, $4, $4 / $2
    if ($4 < 0.7 * $2) {
      printf "REGRESSION at n=%d: read speedup %.2fx < 70%% of baseline %.2fx\n", $1, $4, $2 > "/dev/stderr"
      fail = 1
    }
  }
  END { exit fail }
'

echo "bench gate OK"
