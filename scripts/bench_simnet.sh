#!/usr/bin/env bash
# Regenerates BENCH_simnet.json at the repo root: the legacy eager-clone
# delivery core vs the shared-payload slab fast path of dex-simnet (see
# DESIGN.md, "Network fast path"). Pass an argument to write elsewhere.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p dex-bench --bin bench_simnet -- "${1:-BENCH_simnet.json}"
