#!/usr/bin/env bash
# Tier-1 CI gate: release build, full test suite, and a criterion smoke run
# of the view-algebra microbenchmarks (the per-message hot path).
#
# The workspace builds fully offline: every external dependency is vendored
# as a path crate under vendor/ and pinned by the committed Cargo.lock.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release)"
cargo build --release --workspace

echo "== test"
cargo test -q --workspace

echo "== bench smoke: view_ops"
# CRITERION_MEASURE_MS keeps the smoke run short; the bench harness reads it
# per sample (see vendor/criterion).
CRITERION_MEASURE_MS=2 cargo bench --bench view_ops -p dex-bench

echo "== ci OK"
