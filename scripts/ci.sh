#!/usr/bin/env bash
# Tier-1 CI gate, as a stage dispatcher: `ci.sh <stage>` runs one stage,
# `ci.sh` (or `ci.sh all`) runs the full sequence. CI jobs and humans use
# the same entrypoints — the workflow matrix in .github/workflows/ci.yml
# fans these exact stages out as jobs.
#
# Stages:
#   lint             cargo fmt --check + clippy -D warnings (first-party)
#   build            warning-free release build of the workspace + examples
#   test             full test suite, example smokes, trace determinism
#   chaos-matrix     chaos schedules x seeds through the invariant checker
#   recovery-matrix  crash-restart recovery: WAL + catch-up + resend
#   campaign-smoke   fixed campaign twice at different --jobs, cmp + curves
#   netd-smoke       real-process TCP cluster: MATRIX cell + kill -9 respawn
#   netd-chaos       fault-injected TCP links: chaos schedules, reproducible
#                    fault traces, divergent-state kill -9, campaign rates
#   bench-gate       criterion smoke + bench-regression gate vs baselines
#   all              everything above, in order (the default)
#
# The workspace builds fully offline: every external dependency is vendored
# as a path crate under vendor/ and pinned by the committed Cargo.lock.
set -euo pipefail
cd "$(dirname "$0")/.."

# Lints gate first-party code only; vendored stand-ins are checked as-is.
FIRST_PARTY=(--workspace --exclude criterion --exclude crossbeam --exclude proptest --exclude rand)

stage_lint() {
  echo "== fmt"
  cargo fmt --all -- --check

  echo "== clippy"
  cargo clippy "${FIRST_PARTY[@]}" --all-targets -- -D warnings
}

stage_build() {
  echo "== build (release, deny warnings)"
  RUSTFLAGS="-D warnings" cargo build --release --workspace

  echo "== build examples (deny warnings)"
  RUSTFLAGS="-D warnings" cargo build --release --examples
}

stage_test() {
  echo "== test"
  cargo test -q --workspace

  echo "== example smoke: quickstart, equivocation_demo"
  cargo run --release -q --example quickstart > /dev/null
  cargo run --release -q --example equivocation_demo > /dev/null

  echo "== trace determinism: multicast fast path vs eager expansion"
  cargo test -q -p dex-simnet --test prop_multicast

  echo "== trace determinism: dex-sim --trace twice, byte-identical artifact"
  local trace_args=(--n 7 --t 1 --algo dex-freq --workload bernoulli:0.8 --f 1
                    --adversary equivocate --runs 3 --seed 31 --trace)
  rm -f results/trace_31.json results/trace_31.first.json
  cargo run --release -q --bin dex-sim -- "${trace_args[@]}" > /dev/null
  mv results/trace_31.json results/trace_31.first.json
  cargo run --release -q --bin dex-sim -- "${trace_args[@]}" > /dev/null
  cmp results/trace_31.json results/trace_31.first.json
  rm -f results/trace_31.json results/trace_31.first.json
}

stage_chaos_matrix() {
  echo "== chaos matrix: 8 seeds x 4 schedules through the invariant checker"
  ./scripts/chaos_matrix.sh
}

stage_recovery_matrix() {
  echo "== recovery matrix: crash-restart x seeds, WAL + catch-up + resend"
  ./scripts/recovery_matrix.sh
}

stage_campaign_smoke() {
  echo "== campaign smoke: fixed sweep twice at different --jobs, cmp + rate curves"
  ./scripts/campaign_smoke.sh
}

stage_netd_smoke() {
  echo "== netd smoke: 5 real processes over TCP, decide + kill -9 + respawn"
  ./scripts/netd_smoke.sh
}

stage_netd_chaos() {
  echo "== netd chaos: MATRIX schedules on live sockets + divergent kill -9"
  ./scripts/netd_chaos.sh
}

stage_bench_gate() {
  echo "== bench smoke: view_ops"
  # CRITERION_MEASURE_MS keeps the smoke run short; the bench harness reads
  # it per sample (see vendor/criterion).
  CRITERION_MEASURE_MS=2 cargo bench --bench view_ops -p dex-bench

  echo "== bench gate: view-tally + simnet + pipeline + broadcast speedups vs committed baselines"
  ./scripts/bench_check.sh
}

usage() {
  sed -n '2,20p' "$0" | sed 's/^# \{0,1\}//'
}

stage="${1:-all}"
case "$stage" in
  lint) stage_lint ;;
  build) stage_build ;;
  test) stage_test ;;
  chaos-matrix) stage_chaos_matrix ;;
  recovery-matrix) stage_recovery_matrix ;;
  campaign-smoke) stage_campaign_smoke ;;
  netd-smoke) stage_netd_smoke ;;
  netd-chaos) stage_netd_chaos ;;
  bench-gate) stage_bench_gate ;;
  all)
    stage_lint
    stage_build
    stage_test
    stage_chaos_matrix
    stage_recovery_matrix
    stage_campaign_smoke
    stage_netd_smoke
    stage_netd_chaos
    stage_bench_gate
    echo "== ci OK"
    ;;
  -h|--help|help) usage ;;
  *)
    echo "unknown stage '$stage'" >&2
    usage >&2
    exit 2
    ;;
esac
