#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, a warning-free release build, the full
# test suite, example smoke runs, a determinism check of the --trace
# artifact, the chaos acceptance matrix, the crash-recovery matrix, a
# criterion smoke run of the view-algebra microbenchmarks, and the
# bench-regression gate.
#
# The workspace builds fully offline: every external dependency is vendored
# as a path crate under vendor/ and pinned by the committed Cargo.lock.
set -euo pipefail
cd "$(dirname "$0")/.."

# Lints gate first-party code only; vendored stand-ins are checked as-is.
FIRST_PARTY=(--workspace --exclude criterion --exclude crossbeam --exclude proptest --exclude rand)

echo "== fmt"
cargo fmt --all -- --check

echo "== clippy"
cargo clippy "${FIRST_PARTY[@]}" --all-targets -- -D warnings

echo "== build (release, deny warnings)"
RUSTFLAGS="-D warnings" cargo build --release --workspace

echo "== build examples (deny warnings)"
RUSTFLAGS="-D warnings" cargo build --release --examples

echo "== test"
cargo test -q --workspace

echo "== example smoke: quickstart, equivocation_demo"
cargo run --release -q --example quickstart > /dev/null
cargo run --release -q --example equivocation_demo > /dev/null

echo "== trace determinism: multicast fast path vs eager expansion"
cargo test -q -p dex-simnet --test prop_multicast

echo "== trace determinism: dex-sim --trace twice, byte-identical artifact"
TRACE_ARGS=(--n 7 --t 1 --algo dex-freq --workload bernoulli:0.8 --f 1
            --adversary equivocate --runs 3 --seed 31 --trace)
rm -f results/trace_31.json results/trace_31.first.json
cargo run --release -q --bin dex-sim -- "${TRACE_ARGS[@]}" > /dev/null
mv results/trace_31.json results/trace_31.first.json
cargo run --release -q --bin dex-sim -- "${TRACE_ARGS[@]}" > /dev/null
cmp results/trace_31.json results/trace_31.first.json
rm -f results/trace_31.json results/trace_31.first.json

echo "== chaos matrix: 8 seeds x 4 schedules through the invariant checker"
./scripts/chaos_matrix.sh

echo "== recovery matrix: crash-restart x seeds, WAL + catch-up + resend"
./scripts/recovery_matrix.sh

echo "== bench smoke: view_ops"
# CRITERION_MEASURE_MS keeps the smoke run short; the bench harness reads it
# per sample (see vendor/criterion).
CRITERION_MEASURE_MS=2 cargo bench --bench view_ops -p dex-bench

echo "== bench gate: view-tally + simnet + pipeline speedups vs committed baselines"
./scripts/bench_check.sh

echo "== ci OK"
