#!/usr/bin/env bash
# Campaign-smoke gate: the fixed CI campaign (smoke preset: 4 seeds x
# {clean + canonical chaos MATRIX} x {silent, equivocate} x both legal
# dex-freq pairs) run twice at different --jobs counts, cmp-ing the
# artifacts byte-for-byte — worker count and scheduling order must not
# leak into the results — and asserting the paper's adaptivity claim on
# the aggregated curves: the fast-decision rate is monotone non-increasing
# in f, and strictly higher at some f < t than at f = t on at least one
# canonical chaos schedule (--assert-monotone-f checks both).
#
# Leaves results/campaign_smoke.json and results/campaign_smoke.md behind
# for CI artifact upload and the step summary.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "campaign smoke: --jobs 1"
cargo run --release -q --bin dex-campaign -- \
  --config smoke --jobs 1 --out results/campaign_smoke_jobs1.json \
  --assert-monotone-f > /dev/null

echo "campaign smoke: --jobs 8"
cargo run --release -q --bin dex-campaign -- \
  --config smoke --jobs 8 --out results/campaign_smoke.json \
  --summary-md results/campaign_smoke.md --assert-monotone-f

echo "campaign determinism: --jobs 1 vs --jobs 8, byte-identical artifact"
cmp results/campaign_smoke.json results/campaign_smoke_jobs1.json
rm -f results/campaign_smoke_jobs1.json

# One smoke cell (n=7, t=1, f=0 — the clean corner of the sweep) routed
# through the pipelined replication engine with echo aggregation on: the
# monotone-f staircase asserted above is computed from unaggregated cells,
# and this run proves the aggregation layer leaves the checker invariants
# (including the pipeline window-bound and slot-reuse checks) intact on
# the same configuration. The campaign artifact was cmp'd before this
# step, so the staircase is by construction unchanged by aggregation.
echo "campaign cell via --pipeline with aggregation: n=7 t=1, invariants"
cargo run --release -q --bin dex-sim -- \
  --n 7 --t 1 --algo dex-freq --f 0 \
  --pipeline 4:2 --aggregate --stats --seed 42 --trace > /dev/null
rm -f results/trace_pipeline_42.json

echo "campaign smoke OK"
