#!/usr/bin/env bash
# Campaign-smoke gate: the fixed CI campaign (smoke preset: 4 seeds x
# {clean + canonical chaos MATRIX} x {silent, equivocate} x both legal
# dex-freq pairs) run twice at different --jobs counts, cmp-ing the
# artifacts byte-for-byte — worker count and scheduling order must not
# leak into the results — and asserting the paper's adaptivity claim on
# the aggregated curves: the fast-decision rate is monotone non-increasing
# in f, and strictly higher at some f < t than at f = t on at least one
# canonical chaos schedule (--assert-monotone-f checks both).
#
# Leaves results/campaign_smoke.json and results/campaign_smoke.md behind
# for CI artifact upload and the step summary.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "campaign smoke: --jobs 1"
cargo run --release -q --bin dex-campaign -- \
  --config smoke --jobs 1 --out results/campaign_smoke_jobs1.json \
  --assert-monotone-f > /dev/null

echo "campaign smoke: --jobs 8"
cargo run --release -q --bin dex-campaign -- \
  --config smoke --jobs 8 --out results/campaign_smoke.json \
  --summary-md results/campaign_smoke.md --assert-monotone-f

echo "campaign determinism: --jobs 1 vs --jobs 8, byte-identical artifact"
cmp results/campaign_smoke.json results/campaign_smoke_jobs1.json
rm -f results/campaign_smoke_jobs1.json

echo "campaign smoke OK"
